// Erase-channel attack matrix (authenticated TRIM): an attacker with raw
// store access zeroes a block's ciphertext AND metadata, forging the
// cleared marker. Formats with ciphertext authentication (HMAC, GCM) must
// reject the forged discard via the MAC'd per-object discard bitmap while
// still reading authentic trims as zeros — across all three metadata
// geometries. Unauthenticated formats keep the legacy marker semantics.
#include <algorithm>

#include <gtest/gtest.h>

#include "../testutil.h"
#include "rbd/image.h"
#include "util/rng.h"

namespace vde::rbd {
namespace {

constexpr uint64_t kObjSize = 64 * 1024;  // 16 blocks
constexpr uint64_t kImgSize = 8ull << 20;
constexpr uint64_t kBlk = core::kBlockSize;

rados::ClusterConfig TestCluster() {
  rados::ClusterConfig c;
  c.store.journal_size = 8ull << 20;
  c.store.kv_region_size = 32ull << 20;
  return c;
}

ImageOptions TestImage(core::EncryptionSpec spec) {
  ImageOptions o;
  o.size = kImgSize;
  o.object_size = kObjSize;
  o.enc = spec;
  o.enc.iv_seed = 7;
  o.luks.pbkdf2_iterations = 10;
  o.luks.af_stripes = 8;
  return o;
}

core::EncryptionSpec Spec(core::CipherMode mode, core::IvLayout layout,
                          core::Integrity integrity = core::Integrity::kNone) {
  core::EncryptionSpec s;
  s.mode = mode;
  s.layout = layout;
  s.integrity = integrity;
  return s;
}

// The authenticating format x geometry matrix the erase channel matters
// for: HMAC on all three layouts, GCM (AEAD) on two.
std::vector<core::EncryptionSpec> AuthSpecs() {
  return {
      Spec(core::CipherMode::kXtsRandom, core::IvLayout::kUnaligned,
           core::Integrity::kHmac),
      Spec(core::CipherMode::kXtsRandom, core::IvLayout::kObjectEnd,
           core::Integrity::kHmac),
      Spec(core::CipherMode::kXtsRandom, core::IvLayout::kOmap,
           core::Integrity::kHmac),
      Spec(core::CipherMode::kGcmRandom, core::IvLayout::kObjectEnd),
      Spec(core::CipherMode::kGcmRandom, core::IvLayout::kOmap),
  };
}

std::string SpecTestName(const ::testing::TestParamInfo<core::EncryptionSpec>&
                             info) {
  std::string name = info.param.Name();
  for (char& c : name) {
    if (c == '/' || c == '-' || c == '+') c = '_';
  }
  return name;
}

Bytes BlockKey(uint64_t block) {
  Bytes key(8);
  StoreU64Be(key.data(), block);
  return key;
}

// Zeroes block `block`'s ciphertext and per-block metadata of object 0 on
// every OSD holding it — the strongest store-level attacker: all replicas,
// data and metadata, without touching the transaction path.
sim::Task<void> EraseBlock(rados::Cluster& cluster, const Image& img,
                           uint64_t block) {
  const std::string oid = img.ObjectName(0);
  const core::EncryptionSpec& spec = img.spec();
  const size_t meta = spec.MetaPerBlock();
  for (size_t i = 0; i < cluster.osd_count(); ++i) {
    objstore::ObjectStore& os = cluster.osd(i).store();
    if (!os.ObjectExists(oid)) continue;
    switch (spec.layout) {
      case core::IvLayout::kUnaligned: {
        const uint64_t stride = kBlk + meta;
        CO_ASSERT_OK(os.TamperObjectData(oid, block * stride,
                                      Bytes(stride, 0)));
        break;
      }
      case core::IvLayout::kObjectEnd:
        CO_ASSERT_OK(os.TamperObjectData(oid, block * kBlk, Bytes(kBlk, 0)));
        CO_ASSERT_OK(os.TamperObjectData(oid, kObjSize + block * meta,
                                      Bytes(meta, 0)));
        break;
      case core::IvLayout::kOmap:
        CO_ASSERT_OK(os.TamperObjectData(oid, block * kBlk, Bytes(kBlk, 0)));
        CO_ASSERT_OK(co_await os.TamperOmapRow(oid, BlockKey(block),
                                               Bytes{}));
        break;
      case core::IvLayout::kNone:
        ADD_FAILURE() << "matrix only covers metadata layouts";
        co_return;
    }
  }
}

class TrimAuthAllLayouts
    : public ::testing::TestWithParam<core::EncryptionSpec> {};

INSTANTIATE_TEST_SUITE_P(AuthLayouts, TrimAuthAllLayouts,
                         ::testing::ValuesIn(AuthSpecs()), SpecTestName);

// The acceptance gate: a zeroed LIVE block fails authentication, an
// authentic trim of the SAME geometry reads as zeros, and untouched
// blocks keep reading their data.
TEST_P(TrimAuthAllLayouts, ZeroedLiveBlockFailsAuthenticTrimReadsZeros) {
  testutil::RunSim([spec = GetParam()]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image =
        co_await Image::Create(**cluster, "era", "pw", TestImage(spec));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(11);
    const Bytes data = rng.RandomBytes(3 * kBlk);
    CO_ASSERT_OK(co_await img.Write(0, data));
    CO_ASSERT_OK(co_await img.Flush());
    co_await (*cluster)->Drain();

    // Authentic trim of block 2: reads as zeros, before and after.
    CO_ASSERT_OK(co_await img.Discard(2 * kBlk, kBlk));
    auto trimmed = co_await img.Read(2 * kBlk, kBlk);
    CO_ASSERT_OK(trimmed.status());
    EXPECT_TRUE(std::all_of(trimmed->begin(), trimmed->end(),
                            [](uint8_t b) { return b == 0; }));

    // Attacker zeroes live block 0 (data + metadata, every replica).
    co_await EraseBlock(**cluster, img, 0);
    auto forged = co_await img.Read(0, kBlk);
    EXPECT_EQ(forged.status().code(), StatusCode::kCorruption)
        << "attacker-zeroed live block must fail authentication, got: "
        << forged.status().ToString();

    // The untouched neighbor still round-trips.
    auto live = co_await img.Read(kBlk, kBlk);
    CO_ASSERT_OK(live.status());
    EXPECT_TRUE(std::equal(live->begin(), live->end(),
                           data.begin() + static_cast<long>(kBlk)));
  });
}

// Same attack, but the victim re-opens the image first: the discard
// bitmap is loaded back from the store (MAC verified) instead of from
// client memory, and the forged discard still fails.
TEST_P(TrimAuthAllLayouts, EraseDetectedAcrossReopen) {
  testutil::RunSim([spec = GetParam()]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    {
      auto image =
          co_await Image::Create(**cluster, "rea", "pw", TestImage(spec));
      CO_ASSERT_OK(image.status());
      Rng rng(12);
      CO_ASSERT_OK(co_await (*image)->Write(0, rng.RandomBytes(2 * kBlk)));
      CO_ASSERT_OK(co_await (*image)->Discard(kBlk, kBlk));
      CO_ASSERT_OK(co_await (*image)->Flush());
      co_await (*cluster)->Drain();
      co_await EraseBlock(**cluster, **image, 0);
    }
    auto reopened = co_await Image::Open(**cluster, "rea", "pw");
    CO_ASSERT_OK(reopened.status());
    auto forged = co_await (*reopened)->Read(0, kBlk);
    EXPECT_EQ(forged.status().code(), StatusCode::kCorruption);
    auto trimmed = co_await (*reopened)->Read(kBlk, kBlk);
    CO_ASSERT_OK(trimmed.status());
    EXPECT_TRUE(std::all_of(trimmed->begin(), trimmed->end(),
                            [](uint8_t b) { return b == 0; }));
  });
}

// Wiping the bitmap record itself is also detected: without a verifiable
// bitmap the image refuses to treat any cleared block as an authentic
// discard.
TEST_P(TrimAuthAllLayouts, WipedBitmapRecordDetectedOnReload) {
  testutil::RunSim([spec = GetParam()]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    {
      auto image =
          co_await Image::Create(**cluster, "wipe", "pw", TestImage(spec));
      CO_ASSERT_OK(image.status());
      Rng rng(13);
      CO_ASSERT_OK(co_await (*image)->Write(0, rng.RandomBytes(2 * kBlk)));
      CO_ASSERT_OK(co_await (*image)->Flush());
      co_await (*cluster)->Drain();
      // Wipe the sealed bitmap record on every replica.
      const std::string oid = (*image)->ObjectName(0);
      const size_t meta = spec.MetaPerBlock();
      const size_t bpo = kObjSize / kBlk;
      const size_t record = bpo / 8 + 32;
      for (size_t i = 0; i < (*cluster)->osd_count(); ++i) {
        objstore::ObjectStore& os = (*cluster)->osd(i).store();
        if (!os.ObjectExists(oid)) continue;
        if (spec.layout == core::IvLayout::kOmap) {
          // The OMAP attacker can do better than a zero-filled record:
          // EMPTY the row outright, trying to masquerade as a fresh
          // object. The existence probe in the bitmap read catches it.
          const Bytes bitmap_key(1, uint8_t{'B'});
          CO_ASSERT_OK(co_await os.TamperOmapRow(oid, bitmap_key, Bytes{}));
        } else {
          const uint64_t off = spec.layout == core::IvLayout::kUnaligned
                                   ? bpo * (kBlk + meta)
                                   : kObjSize + bpo * meta;
          CO_ASSERT_OK(os.TamperObjectData(oid, off, Bytes(record, 0)));
        }
      }
    }
    auto reopened = co_await Image::Open(**cluster, "wipe", "pw");
    CO_ASSERT_OK(reopened.status());
    auto got = co_await (*reopened)->Read(0, kBlk);
    EXPECT_EQ(got.status().code(), StatusCode::kCorruption);
  });
}

// A trim after a snapshot: the head authenticates the discard (zeros),
// while the snapshot still reads the preserved pre-trim data — the clone
// froze both the data and the trimmed-extent map.
TEST_P(TrimAuthAllLayouts, SnapshotPreservesDataAcrossAuthenticatedTrim) {
  testutil::RunSim([spec = GetParam()]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image =
        co_await Image::Create(**cluster, "snap", "pw", TestImage(spec));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(15);
    const Bytes data = rng.RandomBytes(2 * kBlk);
    CO_ASSERT_OK(co_await img.Write(0, data));
    auto snap = co_await img.SnapCreate("pre-trim");
    CO_ASSERT_OK(snap.status());
    CO_ASSERT_OK(co_await img.Discard(0, kBlk));

    auto head = co_await img.Read(0, 2 * kBlk);
    CO_ASSERT_OK(head.status());
    EXPECT_TRUE(std::all_of(head->begin(),
                            head->begin() + static_cast<long>(kBlk),
                            [](uint8_t b) { return b == 0; }));
    EXPECT_TRUE(std::equal(head->begin() + static_cast<long>(kBlk),
                           head->end(),
                           data.begin() + static_cast<long>(kBlk)));
    auto old = co_await img.Read(0, 2 * kBlk, *snap);
    CO_ASSERT_OK(old.status());
    CO_ASSERT_TRUE(*old == data);
    co_await (*cluster)->Drain();
  });
}

// Contrast case: a format WITHOUT authentication keeps the legacy
// unauthenticated marker — the same attack silently reads as a discard.
// (This is the gap the bitmap closes for HMAC/GCM, kept bit-compatible
// for plain-IV formats.)
TEST(TrimAuthLegacy, UnauthenticatedFormatReadsForgedDiscardAsZeros) {
  testutil::RunSim([]() -> sim::Task<void> {
    const auto spec =
        Spec(core::CipherMode::kXtsRandom, core::IvLayout::kObjectEnd);
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image =
        co_await Image::Create(**cluster, "leg", "pw", TestImage(spec));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(14);
    CO_ASSERT_OK(co_await img.Write(0, rng.RandomBytes(kBlk)));
    CO_ASSERT_OK(co_await img.Flush());
    co_await (*cluster)->Drain();
    co_await EraseBlock(**cluster, img, 0);
    auto got = co_await img.Read(0, kBlk);
    CO_ASSERT_OK(got.status());
    EXPECT_TRUE(std::all_of(got->begin(), got->end(),
                            [](uint8_t b) { return b == 0; }));
  });
}

}  // namespace
}  // namespace vde::rbd
