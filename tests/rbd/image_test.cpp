// End-to-end image tests: every encryption spec through the full stack
// (image -> format -> rados -> osd -> objstore -> kv/device).
#include "rbd/image.h"

#include <gtest/gtest.h>

#include "../testutil.h"
#include "util/rng.h"

namespace vde::rbd {
namespace {

rados::ClusterConfig TestCluster() {
  rados::ClusterConfig c;
  c.store.journal_size = 8ull << 20;
  c.store.kv_region_size = 32ull << 20;
  return c;
}

ImageOptions TestImage(core::EncryptionSpec spec) {
  ImageOptions o;
  o.size = 64ull << 20;
  o.enc = spec;
  o.enc.iv_seed = 7;
  o.luks.pbkdf2_iterations = 10;
  o.luks.af_stripes = 8;
  return o;
}

core::EncryptionSpec Spec(core::CipherMode mode, core::IvLayout layout,
                          core::Integrity integrity = core::Integrity::kNone) {
  core::EncryptionSpec s;
  s.mode = mode;
  s.layout = layout;
  s.integrity = integrity;
  return s;
}

class ImageAllSpecs : public ::testing::TestWithParam<core::EncryptionSpec> {};

TEST_P(ImageAllSpecs, WriteReadRoundtripThroughCluster) {
  testutil::RunSim([spec = GetParam()]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    CO_ASSERT_OK(cluster.status());
    auto image =
        co_await Image::Create(**cluster, "img", "pw", TestImage(spec));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(1);

    // Single-block, multi-block, object-spanning IOs.
    struct Io {
      uint64_t off;
      size_t len;
    };
    for (const Io io : {Io{0, 4096}, Io{8192, 32768},
                        Io{(4ull << 20) - 8192, 16384},  // spans two objects
                        Io{10ull << 20, 1 << 20}}) {
      const Bytes data = rng.RandomBytes(io.len);
      CO_ASSERT_OK(co_await img.Write(io.off, data));
      auto got = co_await img.Read(io.off, io.len);
      CO_ASSERT_OK(got.status());
      CO_ASSERT_TRUE(*got == data);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, ImageAllSpecs,
    ::testing::Values(
        Spec(core::CipherMode::kNone, core::IvLayout::kNone),
        Spec(core::CipherMode::kXtsLba, core::IvLayout::kNone),
        Spec(core::CipherMode::kXtsRandom, core::IvLayout::kUnaligned),
        Spec(core::CipherMode::kXtsRandom, core::IvLayout::kObjectEnd),
        Spec(core::CipherMode::kXtsRandom, core::IvLayout::kOmap),
        Spec(core::CipherMode::kXtsRandom, core::IvLayout::kObjectEnd,
             core::Integrity::kHmac),
        Spec(core::CipherMode::kGcmRandom, core::IvLayout::kObjectEnd),
        Spec(core::CipherMode::kWideLba, core::IvLayout::kNone)),
    [](const auto& info) {
      std::string name = info.param.Name();
      for (char& c : name) {
        if (c == '/' || c == '-' || c == '+') c = '_';
      }
      return name;
    });

TEST(Image, OpenWithCorrectPassphrase) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    const auto spec =
        Spec(core::CipherMode::kXtsRandom, core::IvLayout::kObjectEnd);
    Rng rng(2);
    const Bytes data = rng.RandomBytes(8192);
    {
      auto image = co_await Image::Create(**cluster, "persist", "hunter2",
                                          TestImage(spec));
      CO_ASSERT_OK(image.status());
      CO_ASSERT_OK(co_await (*image)->Write(4096, data));
    }
    // Reopen: key comes from the LUKS-like header.
    auto reopened = co_await Image::Open(**cluster, "persist", "hunter2");
    CO_ASSERT_OK(reopened.status());
    auto got = co_await (*reopened)->Read(4096, 8192);
    CO_ASSERT_OK(got.status());
    CO_ASSERT_TRUE(*got == data);
  });
}

TEST(Image, OpenWithWrongPassphraseFails) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    const auto spec =
        Spec(core::CipherMode::kXtsRandom, core::IvLayout::kObjectEnd);
    auto image =
        co_await Image::Create(**cluster, "locked", "right", TestImage(spec));
    CO_ASSERT_OK(image.status());
    auto reopened = co_await Image::Open(**cluster, "locked", "wrong");
    CO_ASSERT_EQ(reopened.status().code(), StatusCode::kPermissionDenied);
  });
}

TEST(Image, UnwrittenRegionsReadZero) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "sparse", "pw",
        TestImage(Spec(core::CipherMode::kXtsRandom,
                       core::IvLayout::kObjectEnd)));
    CO_ASSERT_OK(image.status());
    auto got = co_await (*image)->Read(32ull << 20, 8192);
    CO_ASSERT_OK(got.status());
    CO_ASSERT_TRUE(std::all_of(got->begin(), got->end(),
                               [](uint8_t b) { return b == 0; }));
  });
}

TEST(Image, UnalignedIoSupportedViaRmw) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "align", "pw",
        TestImage(Spec(core::CipherMode::kXtsLba, core::IvLayout::kNone)));
    auto& img = **image;
    Rng rng(3);
    // Unaligned writes/reads round-trip through the RMW path.
    const Bytes data = rng.RandomBytes(4096);
    CO_ASSERT_OK(co_await img.Write(100, data));
    auto got = co_await img.Read(100, 4096);
    CO_ASSERT_OK(got.status());
    CO_ASSERT_TRUE(*got == data);
    EXPECT_GT(img.stats().rmw_blocks, 0u);
    // Zero-length and past-the-end IO still rejected.
    EXPECT_EQ((co_await img.Read(0, 0)).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ((co_await img.Write(img.size(), data)).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ((co_await img.Write(img.size() - 100, data)).code(),
              StatusCode::kInvalidArgument);
  });
}

TEST(Image, SnapshotPreservesDataAcrossOverwrites) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "snappy", "pw",
        TestImage(Spec(core::CipherMode::kXtsRandom,
                       core::IvLayout::kObjectEnd)));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(4);
    const Bytes v1 = rng.RandomBytes(16384);
    const Bytes v2 = rng.RandomBytes(16384);
    CO_ASSERT_OK(co_await img.Write(0, v1));
    auto snap = co_await img.SnapCreate("before");
    CO_ASSERT_OK(snap.status());
    CO_ASSERT_OK(co_await img.Write(0, v2));

    auto head = co_await img.Read(0, 16384);
    auto old = co_await img.Read(0, 16384, *snap);
    CO_ASSERT_OK(head.status());
    CO_ASSERT_OK(old.status());
    CO_ASSERT_TRUE(*head == v2);
    CO_ASSERT_TRUE(*old == v1);
  });
}

TEST(Image, SnapshotWithOmapIvLayout) {
  // The OMAP layout must preserve per-snapshot IVs (the objstore clones
  // omap rows) or snapshot reads would decrypt garbage.
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "snapomap", "pw",
        TestImage(Spec(core::CipherMode::kXtsRandom, core::IvLayout::kOmap)));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(5);
    const Bytes v1 = rng.RandomBytes(8192);
    const Bytes v2 = rng.RandomBytes(8192);
    CO_ASSERT_OK(co_await img.Write(4096, v1));
    auto snap = co_await img.SnapCreate("s1");
    CO_ASSERT_OK(snap.status());
    CO_ASSERT_OK(co_await img.Write(4096, v2));
    auto old = co_await img.Read(4096, 8192, *snap);
    CO_ASSERT_OK(old.status());
    CO_ASSERT_TRUE(*old == v1);
  });
}

TEST(Image, MultipleSnapshotsLayered) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "multi", "pw",
        TestImage(Spec(core::CipherMode::kXtsRandom,
                       core::IvLayout::kObjectEnd)));
    auto& img = **image;
    CO_ASSERT_OK(co_await img.Write(0, Bytes(4096, 1)));
    auto s1 = co_await img.SnapCreate("s1");
    CO_ASSERT_OK(co_await img.Write(0, Bytes(4096, 2)));
    auto s2 = co_await img.SnapCreate("s2");
    CO_ASSERT_OK(co_await img.Write(0, Bytes(4096, 3)));

    auto r1 = co_await img.Read(0, 4096, *s1);
    auto r2 = co_await img.Read(0, 4096, *s2);
    auto rh = co_await img.Read(0, 4096);
    CO_ASSERT_OK(r1.status());
    CO_ASSERT_OK(r2.status());
    CO_ASSERT_OK(rh.status());
    EXPECT_EQ((*r1)[0], 1);
    EXPECT_EQ((*r2)[0], 2);
    EXPECT_EQ((*rh)[0], 3);
    EXPECT_EQ(img.snapshots().size(), 2u);
  });
}

TEST(Image, CiphertextOnWireDiffersFromPlain) {
  // The whole point of client-side encryption: bytes leaving the client are
  // never plaintext. Check the object store's raw content.
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "sec", "pw",
        TestImage(Spec(core::CipherMode::kXtsRandom,
                       core::IvLayout::kObjectEnd)));
    auto& img = **image;
    const Bytes plain = BytesOf(std::string(4096, 'A'));
    CO_ASSERT_OK(co_await img.Write(0, plain));

    const auto acting = (*cluster)->placement().OsdsFor(img.ObjectName(0));
    auto& store = (*cluster)->osd(acting[0]).store();
    objstore::Transaction rd;
    objstore::OsdOp op;
    op.type = objstore::OsdOp::Type::kRead;
    op.offset = 0;
    op.length = 4096;
    rd.oid = img.ObjectName(0);
    rd.ops.push_back(std::move(op));
    auto raw = co_await store.ExecuteRead(rd, objstore::kHeadSnap);
    CO_ASSERT_OK(raw.status());
    EXPECT_NE(raw->data, plain);
    // High entropy spot check: no 16-byte run of 'A' survives.
    const Bytes run(16, 'A');
    EXPECT_EQ(std::search(raw->data.begin(), raw->data.end(), run.begin(),
                          run.end()),
              raw->data.end());
  });
}

TEST(Image, StatsAccumulate) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "stats", "pw",
        TestImage(Spec(core::CipherMode::kXtsLba, core::IvLayout::kNone)));
    auto& img = **image;
    Rng rng(6);
    CO_ASSERT_OK(co_await img.Write(0, rng.RandomBytes(8192)));
    (void)co_await img.Read(0, 4096);
    EXPECT_EQ(img.stats().writes, 1u);
    EXPECT_EQ(img.stats().reads, 1u);
    EXPECT_EQ(img.stats().bytes_written, 8192u);
    EXPECT_EQ(img.stats().bytes_read, 4096u);
  });
}

}  // namespace
}  // namespace vde::rbd
