// End-to-end image tests: every encryption spec through the full stack
// (image -> format -> rados -> osd -> objstore -> kv/device).
#include "rbd/image.h"

#include <gtest/gtest.h>

#include "../testutil.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace vde::rbd {
namespace {

rados::ClusterConfig TestCluster() {
  rados::ClusterConfig c;
  c.store.journal_size = 8ull << 20;
  c.store.kv_region_size = 32ull << 20;
  return c;
}

ImageOptions TestImage(core::EncryptionSpec spec) {
  ImageOptions o;
  o.size = 64ull << 20;
  o.enc = spec;
  o.enc.iv_seed = 7;
  o.luks.pbkdf2_iterations = 10;
  o.luks.af_stripes = 8;
  return o;
}

core::EncryptionSpec Spec(core::CipherMode mode, core::IvLayout layout,
                          core::Integrity integrity = core::Integrity::kNone) {
  core::EncryptionSpec s;
  s.mode = mode;
  s.layout = layout;
  s.integrity = integrity;
  return s;
}

class ImageAllSpecs : public ::testing::TestWithParam<core::EncryptionSpec> {};

TEST_P(ImageAllSpecs, WriteReadRoundtripThroughCluster) {
  testutil::RunSim([spec = GetParam()]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    CO_ASSERT_OK(cluster.status());
    auto image =
        co_await Image::Create(**cluster, "img", "pw", TestImage(spec));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(1);

    // Single-block, multi-block, object-spanning IOs.
    struct Io {
      uint64_t off;
      size_t len;
    };
    for (const Io io : {Io{0, 4096}, Io{8192, 32768},
                        Io{(4ull << 20) - 8192, 16384},  // spans two objects
                        Io{10ull << 20, 1 << 20}}) {
      const Bytes data = rng.RandomBytes(io.len);
      CO_ASSERT_OK(co_await img.Write(io.off, data));
      auto got = co_await img.Read(io.off, io.len);
      CO_ASSERT_OK(got.status());
      CO_ASSERT_TRUE(*got == data);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, ImageAllSpecs,
    ::testing::Values(
        Spec(core::CipherMode::kNone, core::IvLayout::kNone),
        Spec(core::CipherMode::kXtsLba, core::IvLayout::kNone),
        Spec(core::CipherMode::kXtsRandom, core::IvLayout::kUnaligned),
        Spec(core::CipherMode::kXtsRandom, core::IvLayout::kObjectEnd),
        Spec(core::CipherMode::kXtsRandom, core::IvLayout::kOmap),
        Spec(core::CipherMode::kXtsRandom, core::IvLayout::kObjectEnd,
             core::Integrity::kHmac),
        Spec(core::CipherMode::kGcmRandom, core::IvLayout::kObjectEnd),
        Spec(core::CipherMode::kWideLba, core::IvLayout::kNone)),
    [](const auto& info) {
      std::string name = info.param.Name();
      for (char& c : name) {
        if (c == '/' || c == '-' || c == '+') c = '_';
      }
      return name;
    });

TEST(Image, OpenWithCorrectPassphrase) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    const auto spec =
        Spec(core::CipherMode::kXtsRandom, core::IvLayout::kObjectEnd);
    Rng rng(2);
    const Bytes data = rng.RandomBytes(8192);
    {
      auto image = co_await Image::Create(**cluster, "persist", "hunter2",
                                          TestImage(spec));
      CO_ASSERT_OK(image.status());
      CO_ASSERT_OK(co_await (*image)->Write(4096, data));
    }
    // Reopen: key comes from the LUKS-like header.
    auto reopened = co_await Image::Open(**cluster, "persist", "hunter2");
    CO_ASSERT_OK(reopened.status());
    auto got = co_await (*reopened)->Read(4096, 8192);
    CO_ASSERT_OK(got.status());
    CO_ASSERT_TRUE(*got == data);
  });
}

TEST(Image, OpenWithWrongPassphraseFails) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    const auto spec =
        Spec(core::CipherMode::kXtsRandom, core::IvLayout::kObjectEnd);
    auto image =
        co_await Image::Create(**cluster, "locked", "right", TestImage(spec));
    CO_ASSERT_OK(image.status());
    auto reopened = co_await Image::Open(**cluster, "locked", "wrong");
    CO_ASSERT_EQ(reopened.status().code(), StatusCode::kPermissionDenied);
  });
}

TEST(Image, UnwrittenRegionsReadZero) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "sparse", "pw",
        TestImage(Spec(core::CipherMode::kXtsRandom,
                       core::IvLayout::kObjectEnd)));
    CO_ASSERT_OK(image.status());
    auto got = co_await (*image)->Read(32ull << 20, 8192);
    CO_ASSERT_OK(got.status());
    CO_ASSERT_TRUE(std::all_of(got->begin(), got->end(),
                               [](uint8_t b) { return b == 0; }));
  });
}

TEST(Image, UnalignedIoSupportedViaRmw) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "align", "pw",
        TestImage(Spec(core::CipherMode::kXtsLba, core::IvLayout::kNone)));
    auto& img = **image;
    Rng rng(3);
    // Unaligned writes/reads round-trip through the RMW path.
    const Bytes data = rng.RandomBytes(4096);
    CO_ASSERT_OK(co_await img.Write(100, data));
    auto got = co_await img.Read(100, 4096);
    CO_ASSERT_OK(got.status());
    CO_ASSERT_TRUE(*got == data);
    EXPECT_GT(img.stats().rmw_blocks, 0u);
    // Zero-length and past-the-end IO still rejected.
    EXPECT_EQ((co_await img.Read(0, 0)).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ((co_await img.Write(img.size(), data)).code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ((co_await img.Write(img.size() - 100, data)).code(),
              StatusCode::kInvalidArgument);
  });
}

TEST(Image, SnapshotPreservesDataAcrossOverwrites) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "snappy", "pw",
        TestImage(Spec(core::CipherMode::kXtsRandom,
                       core::IvLayout::kObjectEnd)));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(4);
    const Bytes v1 = rng.RandomBytes(16384);
    const Bytes v2 = rng.RandomBytes(16384);
    CO_ASSERT_OK(co_await img.Write(0, v1));
    auto snap = co_await img.SnapCreate("before");
    CO_ASSERT_OK(snap.status());
    CO_ASSERT_OK(co_await img.Write(0, v2));

    auto head = co_await img.Read(0, 16384);
    auto old = co_await img.Read(0, 16384, *snap);
    CO_ASSERT_OK(head.status());
    CO_ASSERT_OK(old.status());
    CO_ASSERT_TRUE(*head == v2);
    CO_ASSERT_TRUE(*old == v1);
  });
}

TEST(Image, SnapshotWithOmapIvLayout) {
  // The OMAP layout must preserve per-snapshot IVs (the objstore clones
  // omap rows) or snapshot reads would decrypt garbage.
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "snapomap", "pw",
        TestImage(Spec(core::CipherMode::kXtsRandom, core::IvLayout::kOmap)));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(5);
    const Bytes v1 = rng.RandomBytes(8192);
    const Bytes v2 = rng.RandomBytes(8192);
    CO_ASSERT_OK(co_await img.Write(4096, v1));
    auto snap = co_await img.SnapCreate("s1");
    CO_ASSERT_OK(snap.status());
    CO_ASSERT_OK(co_await img.Write(4096, v2));
    auto old = co_await img.Read(4096, 8192, *snap);
    CO_ASSERT_OK(old.status());
    CO_ASSERT_TRUE(*old == v1);
  });
}

TEST(Image, MultipleSnapshotsLayered) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "multi", "pw",
        TestImage(Spec(core::CipherMode::kXtsRandom,
                       core::IvLayout::kObjectEnd)));
    auto& img = **image;
    CO_ASSERT_OK(co_await img.Write(0, Bytes(4096, 1)));
    auto s1 = co_await img.SnapCreate("s1");
    CO_ASSERT_OK(co_await img.Write(0, Bytes(4096, 2)));
    auto s2 = co_await img.SnapCreate("s2");
    CO_ASSERT_OK(co_await img.Write(0, Bytes(4096, 3)));

    auto r1 = co_await img.Read(0, 4096, *s1);
    auto r2 = co_await img.Read(0, 4096, *s2);
    auto rh = co_await img.Read(0, 4096);
    CO_ASSERT_OK(r1.status());
    CO_ASSERT_OK(r2.status());
    CO_ASSERT_OK(rh.status());
    EXPECT_EQ((*r1)[0], 1);
    EXPECT_EQ((*r2)[0], 2);
    EXPECT_EQ((*rh)[0], 3);
    EXPECT_EQ(img.snapshots().size(), 2u);
  });
}

TEST(Image, CiphertextOnWireDiffersFromPlain) {
  // The whole point of client-side encryption: bytes leaving the client are
  // never plaintext. Check the object store's raw content.
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "sec", "pw",
        TestImage(Spec(core::CipherMode::kXtsRandom,
                       core::IvLayout::kObjectEnd)));
    auto& img = **image;
    const Bytes plain = BytesOf(std::string(4096, 'A'));
    CO_ASSERT_OK(co_await img.Write(0, plain));

    const auto acting = (*cluster)->placement().OsdsFor(img.ObjectName(0));
    auto& store = (*cluster)->osd(acting[0]).store();
    objstore::Transaction rd;
    objstore::OsdOp op;
    op.type = objstore::OsdOp::Type::kRead;
    op.offset = 0;
    op.length = 4096;
    rd.oid = img.ObjectName(0);
    rd.ops.push_back(std::move(op));
    auto raw = co_await store.ExecuteRead(rd, objstore::kHeadSnap);
    CO_ASSERT_OK(raw.status());
    EXPECT_NE(raw->data, plain);
    // High entropy spot check: no 16-byte run of 'A' survives.
    const Bytes run(16, 'A');
    EXPECT_EQ(std::search(raw->data.begin(), raw->data.end(), run.begin(),
                          run.end()),
              raw->data.end());
  });
}

// --- Header robustness: truncated / corrupt metadata must fail cleanly ---
//
// Serialized layout: magic(4) total_len(4) size(8) object_size(8) mode(1)
// layout(1) integrity(1) encrypted(1) snap_count(4) snaps... luks_len(4)
// luks_blob crc32c(4). The checksum trailer rejects truncated/corrupt
// headers outright; every load in Image::Open is additionally
// bounds-checked (the tests below re-seal the checksum so the parser
// validation itself is exercised), and the ASan CI job turns any
// regression into a loud failure.

// Recomputes the checksum trailer after a test mutated header bytes.
void SealHeader(Bytes& header) {
  ASSERT_GE(header.size(), 12u);
  StoreU32Le(header.data() + header.size() - 4,
             Crc32c(ByteSpan(header.data(), header.size() - 4)));
}

// Reads the image header object's exact serialized bytes.
sim::Task<Result<Bytes>> ReadHeader(rados::Cluster& cluster,
                                    const std::string& name) {
  auto io = cluster.ioctx();
  auto raw = co_await io.Read("rbd_header." + name, 0, 64 * 1024);
  if (!raw.ok()) co_return raw.status();
  Bytes data = std::move(*raw);
  if (data.size() < 8) co_return Status::Corruption("short header");
  const uint32_t total = LoadU32Le(data.data() + 4);
  if (total > data.size()) {
    auto full = co_await io.Read("rbd_header." + name, 0, total);
    if (!full.ok()) co_return full.status();
    data = std::move(*full);
  }
  data.resize(total);
  co_return data;
}

TEST(Image, TruncatedHeaderFailsCleanly) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "trunc", "pw",
        TestImage(Spec(core::CipherMode::kXtsRandom,
                       core::IvLayout::kObjectEnd)));
    CO_ASSERT_OK(image.status());
    CO_ASSERT_OK((co_await (*image)->SnapCreate("snap-a")).status());
    CO_ASSERT_OK((co_await (*image)->SnapCreate("snap-b")).status());
    auto header = co_await ReadHeader(**cluster, "trunc");
    CO_ASSERT_OK(header.status());
    auto io = (*cluster)->ioctx();

    // Cut the header at every structurally interesting point (with the
    // length field patched to match, so the parser sees a self-consistent
    // but incomplete buffer) — each must fail cleanly, never read OOB.
    for (const size_t cut : {size_t{9}, size_t{16}, size_t{27}, size_t{30},
                             size_t{34}, size_t{45}, header->size() / 2,
                             header->size() - 1}) {
      Bytes cropped(header->begin(), header->begin() + static_cast<long>(cut));
      StoreU32Le(cropped.data() + 4, static_cast<uint32_t>(cut));
      // Reject once via the checksum (an actually-truncated object)...
      CO_ASSERT_OK(co_await io.WriteFull("rbd_header.trunc", cropped));
      auto reopened = co_await Image::Open(**cluster, "trunc", "pw");
      EXPECT_FALSE(reopened.ok()) << "cut=" << cut;
      // ...and once with the checksum re-sealed, so the bounds-checked
      // parser itself must catch the structural truncation.
      if (cropped.size() >= 12) {
        SealHeader(cropped);
        CO_ASSERT_OK(co_await io.WriteFull("rbd_header.trunc", cropped));
        auto resealed = co_await Image::Open(**cluster, "trunc", "pw");
        EXPECT_FALSE(resealed.ok()) << "sealed cut=" << cut;
      }
    }
  });
}

TEST(Image, CorruptHeaderFieldsFailCleanly) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "corrupt", "pw",
        TestImage(Spec(core::CipherMode::kXtsRandom,
                       core::IvLayout::kOmap)));
    CO_ASSERT_OK(image.status());
    CO_ASSERT_OK((co_await (*image)->SnapCreate("keep")).status());
    auto header = co_await ReadHeader(**cluster, "corrupt");
    CO_ASSERT_OK(header.status());
    auto io = (*cluster)->ioctx();

    struct Patch {
      const char* what;
      size_t off;
      uint32_t value;
    };
    for (const Patch p : {
             Patch{"magic", 0, 0xDEADBEEF},
             Patch{"total_len tiny", 4, 5},
             Patch{"total_len huge", 4, 0x7FFFFFFF},
             Patch{"object_size unaligned", 16, 12345},
             Patch{"enc spec out of range", 24, 0x77777777},
             Patch{"snap_count huge", 28, 0xFFFFFFFF},
         }) {
      Bytes bad = *header;
      StoreU32Le(bad.data() + p.off, p.value);
      // Unsealed: the checksum rejects the flipped field.
      CO_ASSERT_OK(co_await io.WriteFull("rbd_header.corrupt", bad));
      auto reopened = co_await Image::Open(**cluster, "corrupt", "pw");
      EXPECT_FALSE(reopened.ok()) << p.what;
      // Re-sealed: the field validation itself must reject it.
      SealHeader(bad);
      CO_ASSERT_OK(co_await io.WriteFull("rbd_header.corrupt", bad));
      auto resealed = co_await Image::Open(**cluster, "corrupt", "pw");
      EXPECT_FALSE(resealed.ok()) << p.what << " (sealed)";
    }

    // The pristine header still opens (the patches above were the problem).
    CO_ASSERT_OK(co_await io.WriteFull("rbd_header.corrupt", *header));
    auto ok = co_await Image::Open(**cluster, "corrupt", "pw");
    CO_ASSERT_OK(ok.status());
    EXPECT_EQ((*ok)->snapshots().size(), 1u);
  });
}

TEST(Image, OversizedSnapshotNameRejected) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "snaplen", "pw",
        TestImage(Spec(core::CipherMode::kXtsLba, core::IvLayout::kNone)));
    CO_ASSERT_OK(image.status());
    // 65536 bytes does not fit the u16 length field: reject instead of
    // silently truncating on the next Open.
    auto too_long =
        co_await (*image)->SnapCreate(std::string(65536, 'x'));
    EXPECT_EQ(too_long.status().code(), StatusCode::kInvalidArgument);
    EXPECT_EQ((*image)->snapshots().size(), 0u);
    // The maximum representable length round-trips.
    auto max_len = co_await (*image)->SnapCreate(std::string(65535, 'y'));
    CO_ASSERT_OK(max_len.status());
    auto reopened = co_await Image::Open(**cluster, "snaplen", "pw");
    CO_ASSERT_OK(reopened.status());
    CO_ASSERT_EQ((*reopened)->snapshots().size(), 1u);
    EXPECT_EQ((*reopened)->snapshots().front().second.size(), 65535u);
  });
}

// Metadata larger than the 64 KiB first read (many snapshots with long
// names) must round-trip: Open re-reads the full object instead of parsing
// a truncated prefix.
TEST(Image, LargeMetadataHeaderRoundTrips) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "bigmeta", "pw",
        TestImage(Spec(core::CipherMode::kXtsRandom,
                       core::IvLayout::kObjectEnd)));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(77);
    const Bytes data = rng.RandomBytes(8192);
    CO_ASSERT_OK(co_await img.Write(0, data));
    constexpr size_t kSnaps = 80;
    for (size_t i = 0; i < kSnaps; ++i) {
      std::string name(1200, 'a' + static_cast<char>(i % 26));
      name += std::to_string(i);
      CO_ASSERT_OK((co_await img.SnapCreate(name)).status());
    }
    auto header = co_await ReadHeader(**cluster, "bigmeta");
    CO_ASSERT_OK(header.status());
    EXPECT_GT(header->size(), 64u * 1024) << "test must exceed the first read";

    auto reopened = co_await Image::Open(**cluster, "bigmeta", "pw");
    CO_ASSERT_OK(reopened.status());
    CO_ASSERT_EQ((*reopened)->snapshots().size(), kSnaps);
    auto got = co_await (*reopened)->Read(0, data.size());
    CO_ASSERT_OK(got.status());
    CO_ASSERT_TRUE(*got == data);
  });
}

TEST(Image, StatsAccumulate) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "stats", "pw",
        TestImage(Spec(core::CipherMode::kXtsLba, core::IvLayout::kNone)));
    auto& img = **image;
    Rng rng(6);
    CO_ASSERT_OK(co_await img.Write(0, rng.RandomBytes(8192)));
    (void)co_await img.Read(0, 4096);
    EXPECT_EQ(img.stats().writes, 1u);
    EXPECT_EQ(img.stats().reads, 1u);
    EXPECT_EQ(img.stats().bytes_written, 8192u);
    EXPECT_EQ(img.stats().bytes_read, 4096u);
  });
}

}  // namespace
}  // namespace vde::rbd
