// Matrix tests of the completion-based async IO API: unaligned sub-block
// and straddling writes (RMW through the crypto layer), scatter-gather
// readv/writev, discard/write-zeroes, and flush ordering — across every
// encryption layout the paper discusses, plus verify-mode fio runs at
// sub-block and straddling IO sizes.
#include <algorithm>
#include <gtest/gtest.h>

#include "../testutil.h"
#include "rbd/image.h"
#include "util/rng.h"
#include "workload/fio.h"

namespace vde::rbd {
namespace {

constexpr uint64_t kObjSize = 64 * 1024;  // 16 blocks: cheap cross-object IO
constexpr uint64_t kImgSize = 8ull << 20;

rados::ClusterConfig TestCluster() {
  rados::ClusterConfig c;
  c.store.journal_size = 8ull << 20;
  c.store.kv_region_size = 32ull << 20;
  return c;
}

ImageOptions TestImage(core::EncryptionSpec spec) {
  ImageOptions o;
  o.size = kImgSize;
  o.object_size = kObjSize;
  o.enc = spec;
  o.enc.iv_seed = 7;
  o.luks.pbkdf2_iterations = 10;
  o.luks.af_stripes = 8;
  return o;
}

core::EncryptionSpec Spec(core::CipherMode mode, core::IvLayout layout,
                          core::Integrity integrity = core::Integrity::kNone) {
  core::EncryptionSpec s;
  s.mode = mode;
  s.layout = layout;
  s.integrity = integrity;
  return s;
}

// The four layouts of the paper (Fig. 2) plus integrity/AEAD variants.
std::vector<core::EncryptionSpec> AllLayouts() {
  return {
      Spec(core::CipherMode::kXtsLba, core::IvLayout::kNone),  // LUKS2 base
      Spec(core::CipherMode::kXtsRandom, core::IvLayout::kUnaligned),
      Spec(core::CipherMode::kXtsRandom, core::IvLayout::kObjectEnd),
      Spec(core::CipherMode::kXtsRandom, core::IvLayout::kOmap),
      Spec(core::CipherMode::kXtsRandom, core::IvLayout::kObjectEnd,
           core::Integrity::kHmac),
      Spec(core::CipherMode::kGcmRandom, core::IvLayout::kOmap),
  };
}

std::string SpecTestName(const ::testing::TestParamInfo<core::EncryptionSpec>&
                             info) {
  std::string name = info.param.Name();
  for (char& c : name) {
    if (c == '/' || c == '-' || c == '+') c = '_';
  }
  return name;
}

class AioAllLayouts : public ::testing::TestWithParam<core::EncryptionSpec> {};

INSTANTIATE_TEST_SUITE_P(AllLayouts, AioAllLayouts,
                         ::testing::ValuesIn(AllLayouts()), SpecTestName);

// Sub-block write: 512 B inside one 4 KiB block must merge with the old
// block content (RMW) and only re-encrypt that block.
TEST_P(AioAllLayouts, SubBlockWriteRoundTrips) {
  testutil::RunSim([spec = GetParam()]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image =
        co_await Image::Create(**cluster, "sub", "pw", TestImage(spec));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(1);
    Bytes model = rng.RandomBytes(2 * core::kBlockSize);
    CO_ASSERT_OK(co_await img.Write(0, model));

    const Bytes patch = rng.RandomBytes(512);
    const uint64_t patch_off = 1000;  // mid-block, sector-unaligned
    CO_ASSERT_OK(co_await img.Write(patch_off, patch));
    std::copy(patch.begin(), patch.end(),
              model.begin() + static_cast<long>(patch_off));
    EXPECT_GT(img.stats().rmw_blocks, 0u);

    auto got = co_await img.Read(0, model.size());
    CO_ASSERT_OK(got.status());
    CO_ASSERT_TRUE(*got == model);
    // And an unaligned read of just the patched range.
    auto sub = co_await img.Read(patch_off, patch.size());
    CO_ASSERT_OK(sub.status());
    CO_ASSERT_TRUE(*sub == patch);
  });
}

// Straddling write: 6144 B crossing block AND object boundaries at a
// sector-unaligned offset.
TEST_P(AioAllLayouts, StraddlingWriteRoundTrips) {
  testutil::RunSim([spec = GetParam()]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image =
        co_await Image::Create(**cluster, "straddle", "pw", TestImage(spec));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(2);
    const uint64_t span = 3 * kObjSize;
    Bytes model = rng.RandomBytes(span);
    CO_ASSERT_OK(co_await img.Write(0, model));

    // Crosses the object 1 -> object 2 boundary mid-block.
    const uint64_t off = 2 * kObjSize - 2048 - 512;
    const Bytes patch = rng.RandomBytes(6144);
    CO_ASSERT_OK(co_await img.Write(off, patch));
    std::copy(patch.begin(), patch.end(),
              model.begin() + static_cast<long>(off));

    auto got = co_await img.Read(0, span);
    CO_ASSERT_OK(got.status());
    CO_ASSERT_TRUE(*got == model);
  });
}

// Scatter-gather: writev from odd-sized iovecs, readv into different ones.
TEST_P(AioAllLayouts, ScatterGatherRoundTrips) {
  testutil::RunSim([spec = GetParam()]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image =
        co_await Image::Create(**cluster, "sgl", "pw", TestImage(spec));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(3);
    Bytes base = rng.RandomBytes(2 * kObjSize);
    CO_ASSERT_OK(co_await img.Write(0, base));

    const Bytes part1 = rng.RandomBytes(700);
    const Bytes part2 = rng.RandomBytes(4096);
    const Bytes part3 = rng.RandomBytes(1234);
    const uint64_t off = kObjSize - 4096 - 300;  // straddles objects 0/1
    std::vector<ByteSpan> wiov{ByteSpan(part1), ByteSpan(part2),
                               ByteSpan(part3)};
    CO_ASSERT_OK(co_await img.Writev(std::move(wiov), off));
    Bytes flat;
    AppendBytes(flat, part1);
    AppendBytes(flat, part2);
    AppendBytes(flat, part3);
    std::copy(flat.begin(), flat.end(),
              base.begin() + static_cast<long>(off));

    Bytes dst1(2000), dst2(flat.size() - 2000);
    std::vector<MutByteSpan> riov{MutByteSpan(dst1), MutByteSpan(dst2)};
    CO_ASSERT_OK(co_await img.Readv(std::move(riov), off));
    Bytes joined = dst1;
    AppendBytes(joined, dst2);
    CO_ASSERT_TRUE(joined == flat);

    auto all = co_await img.Read(0, base.size());
    CO_ASSERT_OK(all.status());
    CO_ASSERT_TRUE(*all == base);
  });
}

// Discard of a full object range reads back as zeros; a partial discard
// zeroes only whole blocks inside the range and keeps the edges.
TEST_P(AioAllLayouts, DiscardThenReadZeroes) {
  testutil::RunSim([spec = GetParam()]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image =
        co_await Image::Create(**cluster, "trim", "pw", TestImage(spec));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(4);
    Bytes model = rng.RandomBytes(2 * kObjSize);
    CO_ASSERT_OK(co_await img.Write(0, model));

    // Full first object.
    CO_ASSERT_OK(co_await img.Discard(0, kObjSize));
    std::fill(model.begin(), model.begin() + kObjSize, 0);

    // Partial in the second object: interior whole blocks only.
    const uint64_t off = kObjSize + 1000;
    const uint64_t len = 3 * core::kBlockSize;
    CO_ASSERT_OK(co_await img.Discard(off, len));
    const uint64_t zfirst =
        (off + core::kBlockSize - 1) / core::kBlockSize * core::kBlockSize;
    const uint64_t zlast = (off + len) / core::kBlockSize * core::kBlockSize;
    std::fill(model.begin() + static_cast<long>(zfirst),
              model.begin() + static_cast<long>(zlast), 0);

    auto got = co_await img.Read(0, model.size());
    CO_ASSERT_OK(got.status());
    CO_ASSERT_TRUE(*got == model);
    EXPECT_EQ(img.stats().discards, 2u);
    EXPECT_EQ(img.stats().bytes_discarded, kObjSize + len);
  });
}

// Write-zeroes zeroes the exact byte range, down to sub-block edges.
TEST_P(AioAllLayouts, WriteZeroesExactRange) {
  testutil::RunSim([spec = GetParam()]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image =
        co_await Image::Create(**cluster, "wz", "pw", TestImage(spec));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(5);
    Bytes model = rng.RandomBytes(kObjSize);
    CO_ASSERT_OK(co_await img.Write(0, model));

    const uint64_t off = 1000;
    const uint64_t len = 2 * core::kBlockSize + 777;
    CO_ASSERT_OK(co_await img.WriteZeroes(off, len));
    std::fill(model.begin() + static_cast<long>(off),
              model.begin() + static_cast<long>(off + len), 0);

    auto got = co_await img.Read(0, model.size());
    CO_ASSERT_OK(got.status());
    CO_ASSERT_TRUE(*got == model);
  });
}

// Flush resolves only after every previously issued write completed.
TEST_P(AioAllLayouts, FlushOrdering) {
  testutil::RunSim([spec = GetParam()]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image =
        co_await Image::Create(**cluster, "flush", "pw", TestImage(spec));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(6);

    std::vector<Bytes> bufs;
    std::vector<CompletionPtr> writes;
    for (int i = 0; i < 4; ++i) {
      bufs.push_back(rng.RandomBytes(5000));  // unaligned on purpose
      auto c = Completion::Create();
      img.AioWrite(bufs.back(), static_cast<uint64_t>(i) * 16384 + 100, c);
      writes.push_back(std::move(c));
    }
    bool flush_saw_all_writes = false;
    auto flush = Completion::Create([&](Completion&) {
      flush_saw_all_writes =
          std::all_of(writes.begin(), writes.end(),
                      [](const CompletionPtr& w) { return w->complete(); });
    });
    img.AioFlush(flush);
    CO_ASSERT_FALSE(flush->complete());  // writes still in flight
    co_await flush->Wait();
    CO_ASSERT_TRUE(flush->complete());
    CO_ASSERT_OK(flush->status());
    CO_ASSERT_TRUE(flush_saw_all_writes);
    for (const auto& w : writes) CO_ASSERT_OK(w->status());
    EXPECT_EQ(img.stats().flushes, 1u);
    // An idle-image flush resolves immediately.
    CO_ASSERT_OK(co_await img.Flush());
  });
}

// RMW writes keep data + IV metadata in ONE object transaction: a sub-block
// overwrite parks in the write-back buffer (zero store transactions at
// completion), and draining it applies exactly one transaction carrying
// data + IV (the RMW read is a read-class op, not a transaction).
TEST(AioAtomicity, RmwRidesSingleTransaction) {
  testutil::RunSim([]() -> sim::Task<void> {
    rados::ClusterConfig cfg = TestCluster();
    cfg.nodes = 1;
    cfg.osds_per_node = 3;
    cfg.replication = 1;
    auto cluster = co_await rados::Cluster::Create(cfg);
    auto image = co_await Image::Create(
        **cluster, "atomic", "pw",
        TestImage(Spec(core::CipherMode::kXtsRandom,
                       core::IvLayout::kObjectEnd)));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(7);
    CO_ASSERT_OK(co_await img.Write(0, rng.RandomBytes(4 * core::kBlockSize)));

    auto txn_count = [&]() {
      uint64_t n = 0;
      for (size_t i = 0; i < (*cluster)->osd_count(); ++i) {
        n += (*cluster)->osd(i).store().stats().transactions;
      }
      return n;
    };

    const uint64_t before = txn_count();
    CO_ASSERT_OK(co_await img.Write(100, rng.RandomBytes(512)));
    EXPECT_EQ(txn_count() - before, 0u)
        << "sub-block write must stage, not write through";
    CO_ASSERT_OK(co_await img.Flush());
    EXPECT_EQ(txn_count() - before, 1u) << "RMW data+IV must be one txn";

    const uint64_t before_discard = txn_count();
    CO_ASSERT_OK(co_await img.Discard(core::kBlockSize, core::kBlockSize));
    EXPECT_EQ(txn_count() - before_discard, 1u)
        << "discard data-clear + IV-clear must be one txn";
  });
}

// A recycled object extent must never resurrect TRIMmed data: full-object
// discard (kRemove) scrubs the extent, so a partial rewrite of the same
// object reads zeros — not the old ciphertext — everywhere else.
TEST_P(AioAllLayouts, DiscardedDataNotResurrectedByRewrite) {
  testutil::RunSim([spec = GetParam()]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image =
        co_await Image::Create(**cluster, "scrub", "pw", TestImage(spec));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(9);
    const Bytes secret = rng.RandomBytes(kObjSize);
    CO_ASSERT_OK(co_await img.Write(0, secret));
    CO_ASSERT_OK(co_await img.Discard(0, kObjSize));
    // Rewrite one block; the rest of the object must stay zeros.
    const Bytes fresh = rng.RandomBytes(core::kBlockSize);
    CO_ASSERT_OK(co_await img.Write(0, fresh));
    auto got = co_await img.Read(0, kObjSize);
    CO_ASSERT_OK(got.status());
    CO_ASSERT_TRUE(std::equal(fresh.begin(), fresh.end(), got->begin()));
    CO_ASSERT_TRUE(std::all_of(got->begin() + core::kBlockSize, got->end(),
                               [](uint8_t b) { return b == 0; }));
  });
}

// Snapshots still serve pre-discard data: discard clones before clearing.
TEST(AioAtomicity, SnapshotSurvivesDiscard) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "snaptrim", "pw",
        TestImage(Spec(core::CipherMode::kXtsRandom, core::IvLayout::kOmap)));
    CO_ASSERT_OK(image.status());
    auto& img = **image;
    Rng rng(8);
    const Bytes v1 = rng.RandomBytes(kObjSize);
    CO_ASSERT_OK(co_await img.Write(0, v1));
    auto snap = co_await img.SnapCreate("before-trim");
    CO_ASSERT_OK(snap.status());

    CO_ASSERT_OK(co_await img.Discard(0, kObjSize));
    auto head = co_await img.Read(0, kObjSize);
    CO_ASSERT_OK(head.status());
    CO_ASSERT_TRUE(std::all_of(head->begin(), head->end(),
                               [](uint8_t b) { return b == 0; }));
    auto old = co_await img.Read(0, kObjSize, *snap);
    CO_ASSERT_OK(old.status());
    CO_ASSERT_TRUE(*old == v1);
  });
}

// --- Verify-mode fio at sub-block and straddling IO sizes ---

class AioFio : public ::testing::TestWithParam<core::EncryptionSpec> {};

INSTANTIATE_TEST_SUITE_P(AllLayouts, AioFio,
                         ::testing::ValuesIn(AllLayouts()), SpecTestName);

TEST_P(AioFio, VerifyReadsAtUnalignedIoSizes) {
  for (const uint64_t io_size : {uint64_t{512}, uint64_t{6144}}) {
    testutil::RunSim([spec = GetParam(), io_size]() -> sim::Task<void> {
      auto cluster = co_await rados::Cluster::Create(TestCluster());
      auto image =
          co_await Image::Create(**cluster, "fio", "pw", TestImage(spec));
      CO_ASSERT_OK(image.status());
      workload::FioConfig cfg;
      cfg.io_size = io_size;
      cfg.offset_align = 512;  // sector-granular guest offsets
      cfg.total_ops = 48;
      cfg.queue_depth = 8;
      cfg.working_set = 1 << 20;
      cfg.verify = true;
      cfg.seed = 11 + io_size;
      workload::FioRunner fio(**image, cfg);
      CO_ASSERT_OK(co_await fio.Prefill());
      auto result = co_await fio.Run();
      CO_ASSERT_OK(result.status());
      EXPECT_EQ(result->ops, cfg.total_ops);
      EXPECT_EQ(result->bytes, cfg.total_ops * io_size);
    });
  }
}

TEST(AioFio, VerifiedDiscardMix) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "fiotrim", "pw",
        TestImage(Spec(core::CipherMode::kXtsRandom,
                       core::IvLayout::kObjectEnd)));
    CO_ASSERT_OK(image.status());
    workload::FioConfig cfg;
    cfg.io_size = 8192 + 512;       // straddling, unaligned
    cfg.offset_align = 512;
    cfg.discard_pct = 30;
    cfg.total_ops = 64;
    cfg.queue_depth = 8;            // overlapping IO applies in issue order
                                    // (write-back guards), so the content
                                    // model holds at depth
    cfg.working_set = 1 << 20;
    cfg.verify = true;
    cfg.seed = 23;
    workload::FioRunner fio(**image, cfg);
    CO_ASSERT_OK(co_await fio.Prefill());
    auto result = co_await fio.Run();
    CO_ASSERT_OK(result.status());
    EXPECT_EQ(result->ops, cfg.total_ops);
    EXPECT_GT(result->discards, 0u);
  });
}

// FioResult::Summary reports percentile latency, and the histogram excludes
// warmup ops: exactly total_ops samples even though warmup IOs ran first.
TEST(AioFio, SummaryAndWarmupExclusion) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image = co_await Image::Create(
        **cluster, "fiosum", "pw",
        TestImage(Spec(core::CipherMode::kXtsRandom,
                       core::IvLayout::kObjectEnd)));
    CO_ASSERT_OK(image.status());
    workload::FioConfig cfg;
    cfg.io_size = 4096;
    cfg.total_ops = 32;
    cfg.warmup_ops = 16;
    cfg.queue_depth = 4;
    cfg.working_set = 1 << 20;
    cfg.seed = 5;
    workload::FioRunner fio(**image, cfg);
    CO_ASSERT_OK(co_await fio.Prefill());
    auto result = co_await fio.Run();
    CO_ASSERT_OK(result.status());
    // Warmup ops ran (and are excluded): the histogram holds exactly the
    // measured ops.
    EXPECT_EQ(result->latency_ns.count(), cfg.total_ops);
    EXPECT_EQ(result->ops, cfg.total_ops);
    EXPECT_GT(result->latency_ns.Percentile(99), 0.0);
    const std::string summary = result->Summary();
    EXPECT_NE(summary.find("p50"), std::string::npos);
    EXPECT_NE(summary.find("p99"), std::string::npos);
    EXPECT_NE(summary.find("MB/s"), std::string::npos);
  });
}

}  // namespace
}  // namespace vde::rbd
