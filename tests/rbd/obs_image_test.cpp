// Image-level observability integration: disabled observability is a
// bit-identical sim-clock passthrough, span sums partition each op's
// latency exactly, a traced run covers every instrumented layer, and the
// op tracker dumps in-flight ops mid-run at depth. Runs in both ctest
// shards (single-core and VDE_SIM_CORES=4).
#include <gtest/gtest.h>

#include <set>

#include "../testutil.h"
#include "obs/metrics.h"
#include "rbd/image.h"
#include "util/rng.h"
#include "workload/fio.h"

namespace vde::rbd {
namespace {

constexpr uint64_t kObjSize = 64 * 1024;
constexpr uint64_t kImgSize = 8ull << 20;

rados::ClusterConfig TestCluster() {
  rados::ClusterConfig c;
  c.store.journal_size = 8ull << 20;
  c.store.kv_region_size = 32ull << 20;
  return c;
}

ImageOptions TestImage(bool obs_on) {
  ImageOptions o;
  o.size = kImgSize;
  o.object_size = kObjSize;
  o.enc.mode = core::CipherMode::kXtsRandom;
  o.enc.layout = core::IvLayout::kObjectEnd;
  o.enc.iv_seed = 7;
  o.luks.pbkdf2_iterations = 10;
  o.luks.af_stripes = 8;
  o.obs.enabled = obs_on;
  o.obs.slow_ops = 256;
  return o;
}

// One mixed rwmix+discard fio pass; returns true on success.
sim::Task<bool> MixedRun(Image& img, uint64_t ops) {
  workload::FioConfig fio;
  fio.rw_mix_pct = 60;
  fio.discard_pct = 15;
  fio.io_size = 4096;
  fio.queue_depth = 8;
  fio.total_ops = ops;
  fio.working_set = 2ull << 20;
  fio.seed = 11;
  workload::FioRunner runner(img, fio);
  if (!(co_await runner.Prefill()).ok()) co_return false;
  auto result = co_await runner.Run();
  co_return result.ok();
}

// The full observed timeline of one mixed run on a fresh cluster.
void RunAndClock(bool obs_on, sim::SimTime* clock, uint64_t* events) {
  sim::Scheduler sched;
  bool ok = false;
  sched.Spawn([](bool obs_on, bool* ok) -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    if (!cluster.ok()) co_return;
    auto image =
        co_await Image::Create(**cluster, "obs", "pw", TestImage(obs_on));
    if (!image.ok()) co_return;
    if (!co_await MixedRun(**image, 96)) co_return;
    co_await (*cluster)->Drain();
    *ok = true;
  }(obs_on, &ok));
  sched.Run();
  ASSERT_TRUE(ok);
  *clock = sched.now();
  *events = sched.events_processed();
}

// Gate (a) at test scale: enabling the full observability plane must not
// move the simulated clock by a single nanosecond.
TEST(ObsImage, DisabledObservabilityIsClockIdentical) {
  sim::SimTime clock_off = 0, clock_on = 0;
  uint64_t events_off = 0, events_on = 0;
  RunAndClock(false, &clock_off, &events_off);
  RunAndClock(true, &clock_on, &events_on);
  EXPECT_EQ(clock_off, clock_on);
  EXPECT_EQ(events_off, events_on);
}

// Gate (b) at test scale: every completed op's exclusive stage durations
// sum to exactly its end-to-end latency.
TEST(ObsImage, SpanSumsPartitionLatency) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image =
        co_await Image::Create(**cluster, "obs", "pw", TestImage(true));
    CO_ASSERT_OK(image.status());
    CO_ASSERT_TRUE(co_await MixedRun(**image, 96));

    const auto& slow = (*image)->obs().op_tracker().SlowOps();
    CO_ASSERT_TRUE(!slow.empty());
    for (const obs::OpRecord& r : slow) {
      sim::SimTime sum = 0;
      for (size_t s = 0; s < obs::kNumStages; ++s) sum += r.stage_ns[s];
      EXPECT_EQ(sum, r.latency_ns) << obs::FormatOpRecord(r);
    }
    EXPECT_EQ((*image)->obs().op_tracker().inflight_count(), 0u);
  });
}

// Gate (c) at test scale: the trace covers wb/crypto/store/device spans
// and the metrics registry walks every layer.
TEST(ObsImage, TraceCoversLayersAndRegistryWalks) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    auto image =
        co_await Image::Create(**cluster, "obs", "pw", TestImage(true));
    CO_ASSERT_OK(image.status());
    CO_ASSERT_TRUE(co_await MixedRun(**image, 96));

    std::set<obs::Stage> seen;
    for (const obs::Span& s : (*image)->obs().tracer().Spans()) {
      seen.insert(s.stage);
    }
    EXPECT_TRUE(seen.count(obs::Stage::kWb));
    EXPECT_TRUE(seen.count(obs::Stage::kCrypto));
    EXPECT_TRUE(seen.count(obs::Stage::kStore));
    EXPECT_TRUE(seen.count(obs::Stage::kDevice));

    obs::Metrics root;
    (*image)->ExportMetrics(root);
    EXPECT_GT(root.CounterOr("image.writes"), 0u);
    EXPECT_GT(root.CounterOr("obs.ops_finished"), 0u);
    EXPECT_GT(root.CounterOr("obs.spans_recorded"), 0u);
    EXPECT_GT(root.CounterOr("cluster.store.transactions"), 0u);
    EXPECT_GT(root.CounterOr("cluster.device.write_ops"), 0u);
    EXPECT_GT(root.CounterOr("sim.events_processed"), 0u);
    // The trace adds no sim events: obs counters ride the same registry.
    const std::string json = root.ToJson();
    EXPECT_NE(json.find("\"image\""), std::string::npos);
    EXPECT_NE(json.find("\"obs\""), std::string::npos);
  });
}

// Op tracker under depth: issue 32 writes without awaiting, dump the
// in-flight set synchronously, then wait for everything.
TEST(ObsImage, OpTrackerDumpsInFlightAtDepth) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    // Full-block writes write through (only sub-block writes stage), so
    // every issued op is genuinely in flight until its transaction lands.
    auto image =
        co_await Image::Create(**cluster, "obs", "pw", TestImage(true));
    CO_ASSERT_OK(image.status());
    auto& img = **image;

    Rng rng(3);
    const Bytes buf = rng.RandomBytes(4096);
    std::vector<CompletionPtr> completions;
    for (size_t i = 0; i < 32; ++i) {
      auto c = Completion::Create();
      if (i % 4 == 3) {
        img.AioDiscard(i * 8192, 4096, c);
      } else {
        img.AioWrite(buf, i * 8192, c);
      }
      completions.push_back(std::move(c));
    }
    // Synchronous dump: submissions registered, nothing completed yet
    // (completion requires at least one sim event).
    const sim::SimTime now = sim::Scheduler::Current().now();
    EXPECT_EQ(img.obs().op_tracker().inflight_count(), 32u);
    const auto inflight = img.obs().op_tracker().InFlight(now);
    CO_ASSERT_EQ(inflight.size(), 32u);
    const std::string dump = img.obs().op_tracker().FormatInFlight(now);
    EXPECT_NE(dump.find("in-flight ops: 32"), std::string::npos);
    EXPECT_NE(dump.find("write"), std::string::npos);
    EXPECT_NE(dump.find("discard"), std::string::npos);

    for (auto& c : completions) {
      co_await c->Wait();
      CO_ASSERT_OK(c->status());
      // The completion carries the trace: closed stage accounting.
      CO_ASSERT_TRUE(c->trace() != nullptr);
      sim::SimTime sum = 0;
      for (size_t s = 0; s < obs::kNumStages; ++s) {
        sum += c->trace()->stage_ns()[s];
      }
      EXPECT_GT(sum, 0u);
    }
    EXPECT_EQ(img.obs().op_tracker().inflight_count(), 0u);
    EXPECT_EQ(img.obs().op_tracker().finished(), 32u);
  });
}

}  // namespace
}  // namespace vde::rbd
