// Persistent metadata plane: warm reopens off the local KV, crash
// consistency (cold-start degradation, never torn/stale state), rollback
// rejection via per-object write-generation epochs, and the disabled
// passthrough contract.
#include <algorithm>

#include <gtest/gtest.h>

#include "../testutil.h"
#include "device/nvme.h"
#include "rbd/image.h"
#include "util/rng.h"

namespace vde::rbd {
namespace {

constexpr uint64_t kObjSize = 64 * 1024;  // 16 blocks
constexpr uint64_t kImgSize = 8ull << 20;
constexpr uint64_t kBlk = core::kBlockSize;

rados::ClusterConfig TestCluster() {
  rados::ClusterConfig c;
  c.store.journal_size = 8ull << 20;
  c.store.kv_region_size = 32ull << 20;
  return c;
}

core::EncryptionSpec Spec(core::CipherMode mode, core::IvLayout layout,
                          core::Integrity integrity = core::Integrity::kNone) {
  core::EncryptionSpec s;
  s.mode = mode;
  s.layout = layout;
  s.integrity = integrity;
  return s;
}

// Image options with the plane AND the IV cache on: the plane persists
// whatever the cache holds, so warm tests need both.
ImageOptions PlaneImage(core::EncryptionSpec spec, dev::BlockDevice* meta) {
  ImageOptions o;
  o.size = kImgSize;
  o.object_size = kObjSize;
  o.enc = spec;
  o.enc.iv_seed = 7;
  o.luks.pbkdf2_iterations = 10;
  o.luks.af_stripes = 8;
  o.iv_cache.enabled = true;
  o.meta_store.enabled = true;
  o.meta_store.device = meta;
  return o;
}

MetaStoreConfig PlaneConfig(dev::BlockDevice* meta) {
  MetaStoreConfig c;
  c.enabled = true;
  c.device = meta;
  return c;
}

// The three metadata geometries the warm path must cover.
std::vector<core::EncryptionSpec> HmacSpecs() {
  return {
      Spec(core::CipherMode::kXtsRandom, core::IvLayout::kUnaligned,
           core::Integrity::kHmac),
      Spec(core::CipherMode::kXtsRandom, core::IvLayout::kObjectEnd,
           core::Integrity::kHmac),
      Spec(core::CipherMode::kXtsRandom, core::IvLayout::kOmap,
           core::Integrity::kHmac),
  };
}

std::string SpecTestName(
    const ::testing::TestParamInfo<core::EncryptionSpec>& info) {
  std::string name = info.param.Name();
  for (char& c : name) {
    if (c == '/' || c == '-' || c == '+') c = '_';
  }
  return name;
}

class MetaPlaneAllGeometries
    : public ::testing::TestWithParam<core::EncryptionSpec> {};

INSTANTIATE_TEST_SUITE_P(Geometries, MetaPlaneAllGeometries,
                         ::testing::ValuesIn(HmacSpecs()), SpecTestName);

// Clean close -> reopen: the bitmap and the IV rows come off the local
// plane. The reopened image reads every block without ONE metadata byte
// or bitmap load from the object store.
TEST_P(MetaPlaneAllGeometries, WarmReopenServesMetadataLocally) {
  testutil::RunSim([spec = GetParam()]() -> sim::Task<void> {
    dev::NvmeDevice meta_dev;
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    Rng rng(21);
    const Bytes data = rng.RandomBytes(4 * kBlk);
    {
      auto image = co_await Image::Create(**cluster, "warm", "pw",
                                          PlaneImage(spec, &meta_dev));
      CO_ASSERT_OK(image.status());
      CO_ASSERT_OK(co_await (*image)->Write(0, data));
      CO_ASSERT_OK(co_await (*image)->Discard(2 * kBlk, kBlk));
      CO_ASSERT_OK(co_await (*image)->Flush());
      co_await (*cluster)->Drain();
      const ImageStats s = (*image)->stats();
      EXPECT_GT(s.meta_spills, 0u) << "writes must journal rows/bitmaps";
      EXPECT_GT(s.meta_kv_wal_commits, 0u)
          << "plane KV stats must surface through ImageStats";
      CO_ASSERT_OK(co_await (*image)->Close());
    }
    auto reopened = co_await Image::Open(**cluster, "warm", "pw", {}, nullptr,
                                         {}, {.enabled = true},
                                         PlaneConfig(&meta_dev));
    CO_ASSERT_OK(reopened.status());
    auto& img = **reopened;
    for (uint64_t b = 0; b < 4; ++b) {
      auto got = co_await img.Read(b * kBlk, kBlk);
      CO_ASSERT_OK(got.status());
      if (b == 2) {
        EXPECT_TRUE(std::all_of(got->begin(), got->end(),
                                [](uint8_t v) { return v == 0; }));
      } else {
        EXPECT_TRUE(std::equal(got->begin(), got->end(),
                               data.begin() + static_cast<long>(b * kBlk)));
      }
    }
    const ImageStats s = img.stats();
    EXPECT_GT(s.meta_warm_hits, 0u);
    EXPECT_GT(s.meta_recovered_rows, 0u);
    EXPECT_EQ(s.trim_state_loads, 0u)
        << "warm reopen must not load the bitmap from the store";
    EXPECT_EQ(s.iv_meta_bytes_fetched, 0u)
        << "warm reopen must not fetch IV metadata from the store";
    EXPECT_EQ(s.meta_cold_resets, 0u);
    CO_ASSERT_OK(co_await img.Close());
  });
}

// No Close (crash): the clean flag stays cleared, so the reopen purges
// the persisted rows/bitmaps and degrades to a full cold start — and the
// data still reads back correctly from the authoritative store.
TEST(MetaStore, DirtyReopenColdStartsAndStaysCorrect) {
  testutil::RunSim([]() -> sim::Task<void> {
    const auto spec = Spec(core::CipherMode::kXtsRandom,
                           core::IvLayout::kObjectEnd,
                           core::Integrity::kHmac);
    dev::NvmeDevice meta_dev;
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    Rng rng(22);
    const Bytes data = rng.RandomBytes(3 * kBlk);
    {
      auto image = co_await Image::Create(**cluster, "dirty", "pw",
                                          PlaneImage(spec, &meta_dev));
      CO_ASSERT_OK(image.status());
      CO_ASSERT_OK(co_await (*image)->Write(0, data));
      CO_ASSERT_OK(co_await (*image)->Flush());
      co_await (*cluster)->Drain();
      // Dropped without Close: the journal flushed (Flush does that) but
      // the plane stays marked dirty.
    }
    auto reopened = co_await Image::Open(**cluster, "dirty", "pw", {},
                                         nullptr, {}, {.enabled = true},
                                         PlaneConfig(&meta_dev));
    CO_ASSERT_OK(reopened.status());
    auto& img = **reopened;
    auto got = co_await img.Read(0, 3 * kBlk);
    CO_ASSERT_OK(got.status());
    EXPECT_TRUE(std::equal(got->begin(), got->end(), data.begin()));
    const ImageStats s = img.stats();
    EXPECT_GE(s.meta_cold_resets, 1u);
    EXPECT_EQ(s.meta_warm_hits, 0u)
        << "a dirty plane must never serve persisted state";
    EXPECT_EQ(s.meta_recovered_rows, 0u);
    EXPECT_GT(s.iv_meta_bytes_fetched, 0u)
        << "cold start refetches metadata from the store";
    CO_ASSERT_OK(co_await img.Close());
  });
}

// Kill between spill and KV commit: rows sit in the write-behind journal
// (never committed — the flush threshold is out of reach and the image
// dies before Flush/Close). The reopen must not see them: cold start,
// zero recovered rows, correct data. Write-through is used so the data
// reaches the store without AioFlush (which would commit the journal).
TEST(MetaStore, CrashBeforeJournalCommitLosesSpillsSafely) {
  testutil::RunSim([]() -> sim::Task<void> {
    const auto spec = Spec(core::CipherMode::kXtsRandom,
                           core::IvLayout::kUnaligned,
                           core::Integrity::kHmac);
    dev::NvmeDevice meta_dev;
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    Rng rng(23);
    const Bytes data = rng.RandomBytes(2 * kBlk);
    {
      ImageOptions o = PlaneImage(spec, &meta_dev);
      o.writeback.coalesce = false;
      o.meta_store.journal_flush_rows = 1u << 20;
      auto image = co_await Image::Create(**cluster, "torn", "pw", o);
      CO_ASSERT_OK(image.status());
      CO_ASSERT_OK(co_await (*image)->Write(0, data));
      co_await (*cluster)->Drain();
      const ImageStats s = (*image)->stats();
      EXPECT_GT(s.meta_spills, 0u) << "rows were journaled in memory";
      EXPECT_EQ(s.meta_journal_flushes, 0u)
          << "nothing may have committed before the crash";
      // Dropped without Flush or Close: pending journal entries vanish.
    }
    auto reopened = co_await Image::Open(**cluster, "torn", "pw", {}, nullptr,
                                         {}, {.enabled = true},
                                         PlaneConfig(&meta_dev));
    CO_ASSERT_OK(reopened.status());
    auto& img = **reopened;
    auto got = co_await img.Read(0, 2 * kBlk);
    CO_ASSERT_OK(got.status());
    EXPECT_TRUE(std::equal(got->begin(), got->end(), data.begin()));
    const ImageStats s = img.stats();
    EXPECT_GE(s.meta_cold_resets, 1u);
    EXPECT_EQ(s.meta_recovered_rows, 0u)
        << "uncommitted spills must never resurface";
    CO_ASSERT_OK(co_await img.Close());
  });
}

// A torn plane superblock (CRC failure) wipes the plane and reopens it
// cold — never failing the image open, never serving stale state.
TEST(MetaStore, CorruptPlaneSuperblockDegradesToCold) {
  testutil::RunSim([]() -> sim::Task<void> {
    const auto spec = Spec(core::CipherMode::kXtsRandom,
                           core::IvLayout::kObjectEnd,
                           core::Integrity::kHmac);
    dev::NvmeDevice meta_dev;
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    Rng rng(24);
    const Bytes data = rng.RandomBytes(2 * kBlk);
    {
      auto image = co_await Image::Create(**cluster, "sb", "pw",
                                          PlaneImage(spec, &meta_dev));
      CO_ASSERT_OK(image.status());
      CO_ASSERT_OK(co_await (*image)->Write(0, data));
      CO_ASSERT_OK(co_await (*image)->Flush());
      co_await (*cluster)->Drain();
      CO_ASSERT_OK(co_await (*image)->Close());
    }
    // Corrupt the superblock body (past the magic — a wrong magic just
    // looks like a fresh device; a wrong CRC is detected corruption).
    const Bytes garbage = rng.RandomBytes(16);
    meta_dev.PokeWrite(16, garbage);
    auto reopened = co_await Image::Open(**cluster, "sb", "pw", {}, nullptr,
                                         {}, {.enabled = true},
                                         PlaneConfig(&meta_dev));
    // A corrupt plane must never fail the image open.
    CO_ASSERT_OK(reopened.status());
    auto& img = **reopened;
    auto got = co_await img.Read(0, 2 * kBlk);
    CO_ASSERT_OK(got.status());
    EXPECT_TRUE(std::equal(got->begin(), got->end(), data.begin()));
    const ImageStats s = img.stats();
    EXPECT_GE(s.meta_cold_resets, 1u);
    EXPECT_EQ(s.meta_warm_hits, 0u);
    CO_ASSERT_OK(co_await img.Close());
  });
}

// Rollback rejection, bitmap flavor: an attacker replays an OLD (validly
// MAC'd) bitmap record into the store. The plane's epoch floor — kept
// across the dirty-reopen purge — rejects it as Corruption. Covered
// under HMAC and GCM.
sim::Task<void> RunStaleBitmapReplay(core::EncryptionSpec spec) {
  dev::NvmeDevice meta_dev;
  auto cluster = co_await rados::Cluster::Create(TestCluster());
  Rng rng(25);
  Bytes old_record;
  const Bytes bitmap_key(1, uint8_t{'B'});
  std::string oid;
  {
    auto image = co_await Image::Create(**cluster, "replay", "pw",
                                        PlaneImage(spec, &meta_dev));
    CO_ASSERT_OK(image.status());
    oid = (*image)->ObjectName(0);
    CO_ASSERT_OK(co_await (*image)->Write(0, rng.RandomBytes(2 * kBlk)));
    CO_ASSERT_OK(co_await (*image)->Flush());
    co_await (*cluster)->Drain();
    // Snapshot the current sealed bitmap record (the attacker peeking).
    for (size_t i = 0; i < (*cluster)->osd_count(); ++i) {
      objstore::ObjectStore& os = (*cluster)->osd(i).store();
      if (!os.ObjectExists(oid)) continue;
      auto row = co_await os.PeekOmapRow(oid, bitmap_key);
      CO_ASSERT_OK(row.status());
      old_record = *row;
      break;
    }
    CO_ASSERT_FALSE(old_record.empty());
    // Advance the generation: the discard bumps the epoch and reseals.
    CO_ASSERT_OK(co_await (*image)->Discard(0, kBlk));
    CO_ASSERT_OK(co_await (*image)->Flush());
    co_await (*cluster)->Drain();
    // Dropped WITHOUT Close: the reopen purges persisted bitmaps (cold)
    // but keeps the epoch floors — the exact path rollback attacks.
  }
  // Replay the stale record on every replica.
  for (size_t i = 0; i < (*cluster)->osd_count(); ++i) {
    objstore::ObjectStore& os = (*cluster)->osd(i).store();
    if (!os.ObjectExists(oid)) continue;
    CO_ASSERT_OK(co_await os.TamperOmapRow(oid, bitmap_key, old_record));
  }
  auto reopened = co_await Image::Open(**cluster, "replay", "pw", {},
                                       nullptr, {}, {.enabled = true},
                                       PlaneConfig(&meta_dev));
  CO_ASSERT_OK(reopened.status());
  auto got = co_await (*reopened)->Read(kBlk, kBlk);
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption)
      << "replayed stale bitmap must be rejected by the epoch floor, got: "
      << got.status().ToString();
  CO_ASSERT_OK(co_await (*reopened)->Close());
}

TEST(MetaStore, StaleBitmapReplayRejectedHmac) {
  testutil::RunSim([]() -> sim::Task<void> {
    co_await RunStaleBitmapReplay(Spec(core::CipherMode::kXtsRandom,
                                       core::IvLayout::kOmap,
                                       core::Integrity::kHmac));
  });
}

TEST(MetaStore, StaleBitmapReplayRejectedGcm) {
  testutil::RunSim([]() -> sim::Task<void> {
    co_await RunStaleBitmapReplay(
        Spec(core::CipherMode::kGcmRandom, core::IvLayout::kOmap));
  });
}

// Rollback rejection, IV-row flavor: a session that bypasses the plane
// overwrites a block, leaving the plane's persisted rows stale. The next
// plane-enabled open serves them warm — and the read fails ciphertext
// authentication instead of returning wrong data. Under HMAC and GCM.
sim::Task<void> RunStaleIvRows(core::EncryptionSpec spec) {
  dev::NvmeDevice meta_dev;
  auto cluster = co_await rados::Cluster::Create(TestCluster());
  Rng rng(26);
  {
    auto image = co_await Image::Create(**cluster, "staleiv", "pw",
                                        PlaneImage(spec, &meta_dev));
    CO_ASSERT_OK(image.status());
    CO_ASSERT_OK(co_await (*image)->Write(0, rng.RandomBytes(kBlk)));
    CO_ASSERT_OK(co_await (*image)->Flush());
    co_await (*cluster)->Drain();
    CO_ASSERT_OK(co_await (*image)->Close());
  }
  {
    // Plane-less session: the store moves on, the plane does not.
    auto image = co_await Image::Open(**cluster, "staleiv", "pw");
    CO_ASSERT_OK(image.status());
    CO_ASSERT_OK(co_await (*image)->Write(0, rng.RandomBytes(kBlk)));
    CO_ASSERT_OK(co_await (*image)->Flush());
    co_await (*cluster)->Drain();
    CO_ASSERT_OK(co_await (*image)->Close());
  }
  auto reopened = co_await Image::Open(**cluster, "staleiv", "pw", {},
                                       nullptr, {}, {.enabled = true},
                                       PlaneConfig(&meta_dev));
  CO_ASSERT_OK(reopened.status());
  auto got = co_await (*reopened)->Read(0, kBlk);
  EXPECT_EQ(got.status().code(), StatusCode::kCorruption)
      << "a stale persisted IV row must fail authentication, got: "
      << got.status().ToString();
  CO_ASSERT_OK(co_await (*reopened)->Close());
}

TEST(MetaStore, StalePersistedIvRowRejectedHmac) {
  testutil::RunSim([]() -> sim::Task<void> {
    co_await RunStaleIvRows(Spec(core::CipherMode::kXtsRandom,
                                 core::IvLayout::kObjectEnd,
                                 core::Integrity::kHmac));
  });
}

TEST(MetaStore, StalePersistedIvRowRejectedGcm) {
  testutil::RunSim([]() -> sim::Task<void> {
    co_await RunStaleIvRows(
        Spec(core::CipherMode::kGcmRandom, core::IvLayout::kObjectEnd));
  });
}

// Close is idempotent: the journal and the write-back buffer flush
// exactly once, and the second Close (with or without a plane) is a
// clean no-op that keeps the plane warm for the NEXT open.
TEST(MetaStore, DoubleCloseIsCleanNoOp) {
  testutil::RunSim([]() -> sim::Task<void> {
    const auto spec = Spec(core::CipherMode::kXtsRandom,
                           core::IvLayout::kObjectEnd,
                           core::Integrity::kHmac);
    dev::NvmeDevice meta_dev;
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    Rng rng(27);
    const Bytes data = rng.RandomBytes(kBlk);
    {
      auto image = co_await Image::Create(**cluster, "dc", "pw",
                                          PlaneImage(spec, &meta_dev));
      CO_ASSERT_OK(image.status());
      CO_ASSERT_OK(co_await (*image)->Write(0, data));
      CO_ASSERT_OK(co_await (*image)->Close());
      CO_ASSERT_OK(co_await (*image)->Close());
      co_await (*cluster)->Drain();
    }
    {
      // Plane-less image: double Close is equally safe.
      auto image = co_await Image::Open(**cluster, "dc", "pw");
      CO_ASSERT_OK(image.status());
      CO_ASSERT_OK(co_await (*image)->Close());
      CO_ASSERT_OK(co_await (*image)->Close());
    }
    // The doubled Close left the plane clean: the next open is warm.
    auto reopened = co_await Image::Open(**cluster, "dc", "pw", {}, nullptr,
                                         {}, {.enabled = true},
                                         PlaneConfig(&meta_dev));
    CO_ASSERT_OK(reopened.status());
    auto got = co_await (*reopened)->Read(0, kBlk);
    CO_ASSERT_OK(got.status());
    EXPECT_TRUE(std::equal(got->begin(), got->end(), data.begin()));
    CO_ASSERT_OK(co_await (*reopened)->Close());
  });
}

// Disabled config and non-authenticating formats are full passthroughs:
// identical IO behavior, identical simulated time, all meta counters 0.
TEST(MetaStore, DisabledPlaneIsBehaviorIdenticalPassthrough) {
  const auto spec = Spec(core::CipherMode::kXtsRandom,
                         core::IvLayout::kObjectEnd, core::Integrity::kHmac);
  auto run = [&](bool with_disabled_config, uint64_t* end_time,
                 ImageStats* out) {
    testutil::RunSim([&]() -> sim::Task<void> {
      dev::NvmeDevice meta_dev;
      auto cluster = co_await rados::Cluster::Create(TestCluster());
      ImageOptions o;
      o.size = kImgSize;
      o.object_size = kObjSize;
      o.enc = spec;
      o.enc.iv_seed = 7;
      o.luks.pbkdf2_iterations = 10;
      o.luks.af_stripes = 8;
      o.iv_cache.enabled = true;
      if (with_disabled_config) {
        // enabled=false with a device attached: still a passthrough.
        o.meta_store.enabled = false;
        o.meta_store.device = &meta_dev;
      }
      auto image = co_await Image::Create(**cluster, "pt", "pw", o);
      CO_ASSERT_OK(image.status());
      Rng rng(28);
      CO_ASSERT_OK(co_await (*image)->Write(0, rng.RandomBytes(4 * kBlk)));
      CO_ASSERT_OK(co_await (*image)->Discard(kBlk, kBlk));
      auto got = co_await (*image)->Read(0, 4 * kBlk);
      CO_ASSERT_OK(got.status());
      CO_ASSERT_OK(co_await (*image)->Flush());
      co_await (*cluster)->Drain();
      *out = (*image)->stats();
      *end_time = sim::Scheduler::Current().now();
      CO_ASSERT_OK(co_await (*image)->Close());
    });
  };
  uint64_t t_base = 0, t_disabled = 0;
  ImageStats s_base, s_disabled;
  run(false, &t_base, &s_base);
  run(true, &t_disabled, &s_disabled);
  EXPECT_EQ(t_base, t_disabled)
      << "a disabled plane must not change simulated time";
  EXPECT_EQ(s_base.bytes_written, s_disabled.bytes_written);
  EXPECT_EQ(s_base.bytes_read, s_disabled.bytes_read);
  EXPECT_EQ(s_base.iv_hits, s_disabled.iv_hits);
  EXPECT_EQ(s_base.iv_meta_bytes_fetched, s_disabled.iv_meta_bytes_fetched);
  EXPECT_EQ(s_base.trim_state_loads, s_disabled.trim_state_loads);
  EXPECT_EQ(s_disabled.meta_spills, 0u);
  EXPECT_EQ(s_disabled.meta_journal_flushes, 0u);
  EXPECT_EQ(s_disabled.meta_kv_wal_commits, 0u);
}

// A format without authenticated trims (plain XTS, no integrity) refuses
// the plane even when enabled: persisting rows a read cannot verify
// would turn local staleness into silent corruption.
TEST(MetaStore, UnauthenticatedFormatRefusesPlane) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice meta_dev;
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    ImageOptions o = PlaneImage(
        Spec(core::CipherMode::kXtsRandom, core::IvLayout::kObjectEnd),
        &meta_dev);
    auto image = co_await Image::Create(**cluster, "noauth", "pw", o);
    CO_ASSERT_OK(image.status());
    EXPECT_EQ((*image)->meta_store(), nullptr);
    Rng rng(29);
    CO_ASSERT_OK(co_await (*image)->Write(0, rng.RandomBytes(kBlk)));
    CO_ASSERT_OK(co_await (*image)->Flush());
    co_await (*cluster)->Drain();
    EXPECT_EQ((*image)->stats().meta_spills, 0u);
    CO_ASSERT_OK(co_await (*image)->Close());
  });
}

// --- Plane GC for removed objects ----------------------------------------

// Session 1 persists IV rows for two objects (plus a bitmap row from a
// partial discard). Session 2 removes object 0 wholesale and closes: the
// close-time GC must drop its persisted 'B'/'I' rows (gc_rows > 0), so
// session 3 recovers strictly fewer rows yet still serves object 1 warm.
TEST(MetaStore, CloseGcDropsRowsForRemovedObjects) {
  testutil::RunSim([]() -> sim::Task<void> {
    const auto spec = Spec(core::CipherMode::kXtsRandom,
                           core::IvLayout::kObjectEnd,
                           core::Integrity::kHmac);
    dev::NvmeDevice meta_dev;
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    Rng rng(71);
    const Bytes obj0 = rng.RandomBytes(kObjSize);
    const Bytes obj1 = rng.RandomBytes(kObjSize);
    {
      auto image = co_await Image::Create(**cluster, "gc", "pw",
                                          PlaneImage(spec, &meta_dev));
      CO_ASSERT_OK(image.status());
      CO_ASSERT_OK(co_await (*image)->Write(0, obj0));
      CO_ASSERT_OK(co_await (*image)->Write(kObjSize, obj1));
      CO_ASSERT_OK(co_await (*image)->Discard(2 * kBlk, kBlk));  // 'B' row
      CO_ASSERT_OK(co_await (*image)->Flush());
      co_await (*cluster)->Drain();
      CO_ASSERT_OK(co_await (*image)->Close());
      EXPECT_EQ((*image)->stats().meta_gc_rows, 0u);
    }
    uint64_t rows_before_gc = 0;
    {
      auto image = co_await Image::Open(**cluster, "gc", "pw", {}, nullptr,
                                        {}, {.enabled = true},
                                        PlaneConfig(&meta_dev));
      CO_ASSERT_OK(image.status());
      // Rows install lazily on first touch: read both objects so the
      // recovered-row count covers the whole persisted working set.
      auto r0 = co_await (*image)->Read(0, kObjSize);
      CO_ASSERT_OK(r0.status());
      auto r1 = co_await (*image)->Read(kObjSize, kObjSize);
      CO_ASSERT_OK(r1.status());
      EXPECT_TRUE(std::equal(r1->begin(), r1->end(), obj1.begin()));
      rows_before_gc = (*image)->stats().meta_recovered_rows;
      EXPECT_GT(rows_before_gc, 0u);
      CO_ASSERT_OK(co_await (*image)->Discard(0, kObjSize));  // full remove
      CO_ASSERT_OK(co_await (*image)->Flush());
      co_await (*cluster)->Drain();
      CO_ASSERT_OK(co_await (*image)->Close());
      EXPECT_GT((*image)->stats().meta_gc_rows, 0u);
    }
    auto reopened = co_await Image::Open(**cluster, "gc", "pw", {}, nullptr,
                                         {}, {.enabled = true},
                                         PlaneConfig(&meta_dev));
    CO_ASSERT_OK(reopened.status());
    auto& img = **reopened;
    // Object 0 is gone: reads come back zero.
    auto gone = co_await img.Read(0, kObjSize);
    CO_ASSERT_OK(gone.status());
    EXPECT_TRUE(std::all_of(gone->begin(), gone->end(),
                            [](uint8_t b) { return b == 0; }));
    // Object 1 still serves warm off the plane.
    auto kept = co_await img.Read(kObjSize, kObjSize);
    CO_ASSERT_OK(kept.status());
    EXPECT_TRUE(std::equal(kept->begin(), kept->end(), obj1.begin()));
    EXPECT_EQ(img.stats().iv_meta_bytes_fetched, 0u);
    // The same read pass now installs strictly fewer rows: object 0's
    // persisted rows were deleted by the close-time GC.
    EXPECT_LT(img.stats().meta_recovered_rows, rows_before_gc);
    CO_ASSERT_OK(co_await img.Close());
  });
}

// A rewrite after the remove cancels the pending GC: the object's fresh
// rows are journaled again, close deletes nothing, and the next session
// serves the new content warm.
TEST(MetaStore, RewriteAfterRemoveCancelsGc) {
  testutil::RunSim([]() -> sim::Task<void> {
    const auto spec = Spec(core::CipherMode::kXtsRandom,
                           core::IvLayout::kObjectEnd,
                           core::Integrity::kHmac);
    dev::NvmeDevice meta_dev;
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    Rng rng(72);
    {
      auto image = co_await Image::Create(**cluster, "regc", "pw",
                                          PlaneImage(spec, &meta_dev));
      CO_ASSERT_OK(image.status());
      CO_ASSERT_OK(co_await (*image)->Write(0, rng.RandomBytes(kObjSize)));
      CO_ASSERT_OK(co_await (*image)->Flush());
      co_await (*cluster)->Drain();
      CO_ASSERT_OK(co_await (*image)->Close());
    }
    const Bytes fresh = rng.RandomBytes(kObjSize);
    {
      auto image = co_await Image::Open(**cluster, "regc", "pw", {}, nullptr,
                                        {}, {.enabled = true},
                                        PlaneConfig(&meta_dev));
      CO_ASSERT_OK(image.status());
      CO_ASSERT_OK(co_await (*image)->Discard(0, kObjSize));
      CO_ASSERT_OK(co_await (*image)->Write(0, fresh));
      CO_ASSERT_OK(co_await (*image)->Flush());
      co_await (*cluster)->Drain();
      CO_ASSERT_OK(co_await (*image)->Close());
      EXPECT_EQ((*image)->stats().meta_gc_rows, 0u);
    }
    auto reopened = co_await Image::Open(**cluster, "regc", "pw", {}, nullptr,
                                         {}, {.enabled = true},
                                         PlaneConfig(&meta_dev));
    CO_ASSERT_OK(reopened.status());
    auto& img = **reopened;
    auto got = co_await img.Read(0, kObjSize);
    CO_ASSERT_OK(got.status());
    EXPECT_TRUE(std::equal(got->begin(), got->end(), fresh.begin()));
    EXPECT_EQ(img.stats().iv_meta_bytes_fetched, 0u);
    EXPECT_GT(img.stats().meta_warm_hits, 0u);
    CO_ASSERT_OK(co_await img.Close());
  });
}

// GC keeps the 'E' epoch floors on purpose: a record sealed before the
// remove must STILL be rejected when replayed against a recreated object
// — deleting the floor with the other rows would reopen the rollback
// window the epochs exist to close.
TEST(MetaStore, EpochFloorSurvivesCloseGc) {
  testutil::RunSim([]() -> sim::Task<void> {
    const auto spec = Spec(core::CipherMode::kXtsRandom,
                           core::IvLayout::kOmap, core::Integrity::kHmac);
    dev::NvmeDevice meta_dev;
    auto cluster = co_await rados::Cluster::Create(TestCluster());
    Rng rng(73);
    Bytes old_record;
    const Bytes bitmap_key(1, uint8_t{'B'});
    std::string oid;
    {
      auto image = co_await Image::Create(**cluster, "gcfloor", "pw",
                                          PlaneImage(spec, &meta_dev));
      CO_ASSERT_OK(image.status());
      oid = (*image)->ObjectName(0);
      CO_ASSERT_OK(co_await (*image)->Write(0, rng.RandomBytes(2 * kBlk)));
      CO_ASSERT_OK(co_await (*image)->Flush());
      co_await (*cluster)->Drain();
      // The attacker snapshots the sealed bitmap record of generation N.
      for (size_t i = 0; i < (*cluster)->osd_count(); ++i) {
        objstore::ObjectStore& os = (*cluster)->osd(i).store();
        if (!os.ObjectExists(oid)) continue;
        auto row = co_await os.PeekOmapRow(oid, bitmap_key);
        CO_ASSERT_OK(row.status());
        old_record = *row;
        break;
      }
      CO_ASSERT_FALSE(old_record.empty());
      // Remove the whole object and close cleanly: GC drops its rows.
      CO_ASSERT_OK(co_await (*image)->Discard(0, kObjSize));
      CO_ASSERT_OK(co_await (*image)->Flush());
      co_await (*cluster)->Drain();
      CO_ASSERT_OK(co_await (*image)->Close());
      EXPECT_GT((*image)->stats().meta_gc_rows, 0u);
    }
    {
      // Recreate the object past the floor; drop WITHOUT Close so the
      // next reopen purges warm bitmaps and loads them cold from the
      // (tampered) store — the path a rollback targets.
      auto image = co_await Image::Open(**cluster, "gcfloor", "pw", {},
                                        nullptr, {}, {.enabled = true},
                                        PlaneConfig(&meta_dev));
      CO_ASSERT_OK(image.status());
      CO_ASSERT_OK(co_await (*image)->Write(0, rng.RandomBytes(2 * kBlk)));
      CO_ASSERT_OK(co_await (*image)->Discard(0, kBlk));
      CO_ASSERT_OK(co_await (*image)->Flush());
      co_await (*cluster)->Drain();
    }
    for (size_t i = 0; i < (*cluster)->osd_count(); ++i) {
      objstore::ObjectStore& os = (*cluster)->osd(i).store();
      if (!os.ObjectExists(oid)) continue;
      CO_ASSERT_OK(co_await os.TamperOmapRow(oid, bitmap_key, old_record));
    }
    auto reopened = co_await Image::Open(**cluster, "gcfloor", "pw", {},
                                         nullptr, {}, {.enabled = true},
                                         PlaneConfig(&meta_dev));
    CO_ASSERT_OK(reopened.status());
    auto got = co_await (*reopened)->Read(kBlk, kBlk);
    EXPECT_EQ(got.status().code(), StatusCode::kCorruption)
        << "pre-remove bitmap record must stay below the GC-surviving "
        << "epoch floor, got: " << got.status().ToString();
    CO_ASSERT_OK(co_await (*reopened)->Close());
  });
}

}  // namespace
}  // namespace vde::rbd
