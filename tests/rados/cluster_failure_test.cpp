// Failure + recovery + cluster QoS: degraded writes, client map refresh on
// dead/mispointed primaries, background and inline recovery, the recovery
// throttle, and the mClock dequeue (identity, caps, reservations, and the
// rbd tenant plumb-through).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../testutil.h"
#include "rados/cluster.h"
#include "rbd/image.h"
#include "util/rng.h"

namespace vde::rados {
namespace {

ClusterConfig SmallCluster() {
  ClusterConfig c;
  c.store.journal_size = 8ull << 20;
  c.store.kv_region_size = 32ull << 20;
  return c;
}

TEST(ClusterFailure, WritesKeepCommittingAfterOsdLoss) {
  testutil::RunSim([]() -> sim::Task<void> {
    ClusterConfig config = SmallCluster();
    // Recovery off so the replacement member stays missing the object for
    // the duration of the test (deterministic degraded window).
    config.recovery.parallelism = 0;
    auto cluster = co_await Cluster::Create(config);
    CO_ASSERT_OK(cluster.status());
    auto io = (*cluster)->ioctx();
    Rng rng(7);
    const Bytes data = rng.RandomBytes(16384);
    CO_ASSERT_OK(co_await io.WriteFull("deg", data));
    const auto acting = (*cluster)->placement().OsdsFor("deg");

    (*cluster)->MarkOsdDown(acting[1]);
    // The write commits on the survivors; the primary is unchanged, so no
    // redirect is needed, but it lands below full width: the same-node
    // replacement never saw the object.
    CO_ASSERT_OK(co_await io.WriteFull("deg", data));
    EXPECT_GT((*cluster)->stats().degraded_writes, 0u);
    EXPECT_GT((*cluster)->stats().skipped_replicas, 0u);

    auto back = co_await io.Read("deg", 0, data.size());
    CO_ASSERT_OK(back.status());
    EXPECT_EQ(*back, data);
  });
}

TEST(ClusterFailure, DeadPrimaryCostsTimeoutThenMapRefresh) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await Cluster::Create(SmallCluster());
    CO_ASSERT_OK(cluster.status());
    auto io = (*cluster)->ioctx();
    Rng rng(8);
    const Bytes data = rng.RandomBytes(4096);
    CO_ASSERT_OK(co_await io.WriteFull("redirect", data));
    const auto acting = (*cluster)->placement().OsdsFor("redirect");

    // Kill the primary. The client's cached map still points at it: the
    // next op pays the connect timeout, refreshes, and lands on the new
    // primary (same node, by the movement bound).
    (*cluster)->MarkOsdDown(acting[0]);
    const uint64_t stale_epoch = (*cluster)->client_map().epoch();
    CO_ASSERT_OK(co_await io.WriteFull("redirect", data));
    EXPECT_GT((*cluster)->stats().osd_timeouts, 0u);
    EXPECT_GT((*cluster)->stats().map_refreshes, 0u);
    EXPECT_GT((*cluster)->client_map().epoch(), stale_epoch);

    const auto now_acting = (*cluster)->placement().OsdsFor("redirect");
    EXPECT_NE(now_acting[0], acting[0]);
    auto back = co_await io.Read("redirect", 0, data.size());
    CO_ASSERT_OK(back.status());
    EXPECT_EQ(*back, data);
    co_await (*cluster)->Drain();
  });
}

TEST(ClusterFailure, BackgroundRecoveryRestoresFullWidth) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await Cluster::Create(SmallCluster());
    CO_ASSERT_OK(cluster.status());
    auto io = (*cluster)->ioctx();
    Rng rng(9);
    std::vector<std::string> oids;
    const Bytes data = rng.RandomBytes(32768);
    for (int i = 0; i < 24; ++i) {
      oids.push_back("bg." + std::to_string(i));
      CO_ASSERT_OK(co_await io.WriteFull(oids.back(), data));
    }
    const auto victim_acting = (*cluster)->placement().OsdsFor(oids[0]);
    (*cluster)->MarkOsdDown(victim_acting[0]);
    EXPECT_GT((*cluster)->DegradedObjectCount(), 0u);

    co_await (*cluster)->WaitForClean();
    EXPECT_EQ((*cluster)->DegradedObjectCount(), 0u);
    EXPECT_GT((*cluster)->recovery().stats().objects_pushed, 0u);
    // Every object is back at full width on its (possibly new) acting set.
    for (const auto& oid : oids) {
      const auto acting = (*cluster)->placement().OsdsFor(oid);
      CO_ASSERT_EQ(acting.size(), 3u);
      for (size_t id : acting) {
        EXPECT_TRUE((*cluster)->osd(id).store().ObjectExists(oid))
            << oid << " on osd " << id;
        EXPECT_EQ((*cluster)->osd(id).store().ObjectSize(oid), data.size());
      }
    }
    co_await (*cluster)->Drain();
  });
}

TEST(ClusterFailure, RevivedOsdCatchesUpOnMissedWrites) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await Cluster::Create(SmallCluster());
    CO_ASSERT_OK(cluster.status());
    auto io = (*cluster)->ioctx();
    Rng rng(10);
    const Bytes v1 = rng.RandomBytes(8192);
    const Bytes v2 = rng.RandomBytes(8192);
    CO_ASSERT_OK(co_await io.WriteFull("revive", v1));
    const auto acting = (*cluster)->placement().OsdsFor("revive");

    (*cluster)->MarkOsdDown(acting[2]);
    CO_ASSERT_OK(co_await io.WriteFull("revive", v2));  // missed by acting[2]
    co_await (*cluster)->WaitForClean();

    (*cluster)->MarkOsdUp(acting[2]);
    co_await (*cluster)->WaitForClean();
    // Peering on the way back up flags the stale copy; recovery replaces it.
    objstore::Transaction read;
    read.oid = "revive";
    objstore::OsdOp op;
    op.type = objstore::OsdOp::Type::kRead;
    op.offset = 0;
    op.length = v2.size();
    read.ops.push_back(std::move(op));
    auto direct = co_await (*cluster)->osd(acting[2]).store().ExecuteRead(
        read, objstore::kHeadSnap);
    CO_ASSERT_OK(direct.status());
    EXPECT_EQ(direct->data, v2);
    co_await (*cluster)->Drain();
  });
}

TEST(ClusterFailure, PrimaryMissingObjectPullsInline) {
  testutil::RunSim([]() -> sim::Task<void> {
    ClusterConfig config = SmallCluster();
    // No background workers: the only way a degraded object heals is a
    // client op forcing the primary's inline pull.
    config.recovery.parallelism = 0;
    auto cluster = co_await Cluster::Create(config);
    CO_ASSERT_OK(cluster.status());
    auto io = (*cluster)->ioctx();
    Rng rng(11);
    const Bytes data = rng.RandomBytes(16384);
    CO_ASSERT_OK(co_await io.WriteFull("inline", data));
    const auto acting = (*cluster)->placement().OsdsFor("inline");

    // New primary (same node as the dead one) has never seen the object.
    (*cluster)->MarkOsdDown(acting[0]);
    auto back = co_await io.Read("inline", 0, data.size());
    CO_ASSERT_OK(back.status());
    EXPECT_EQ(*back, data);
    EXPECT_GT((*cluster)->recovery().stats().inline_pulls, 0u);
    const auto now_acting = (*cluster)->placement().OsdsFor("inline");
    EXPECT_TRUE(
        (*cluster)->osd(now_acting[0]).store().ObjectExists("inline"));
  });
}

TEST(ClusterFailure, RecoveryRespectsTokenBucketThrottle) {
  testutil::RunSim([]() -> sim::Task<void> {
    ClusterConfig config = SmallCluster();
    // 1 MiB/s with a 64 KiB burst: pushing ~24 x 64 KiB must take >= 1 s of
    // sim time even though the NICs could move it in milliseconds.
    config.recovery.rate_bytes_per_sec = 1.0 * (1 << 20);
    config.recovery.burst_bytes = 64.0 * 1024;
    auto cluster = co_await Cluster::Create(config);
    CO_ASSERT_OK(cluster.status());
    auto io = (*cluster)->ioctx();
    Rng rng(12);
    const Bytes data = rng.RandomBytes(64 * 1024);
    std::vector<std::string> oids;
    for (int i = 0; i < 24; ++i) {
      oids.push_back("thr." + std::to_string(i));
      CO_ASSERT_OK(co_await io.WriteFull(oids.back(), data));
    }
    const auto acting = (*cluster)->placement().OsdsFor(oids[0]);
    const sim::SimTime t0 = sim::Scheduler::Current().now();
    (*cluster)->MarkOsdDown(acting[0]);
    co_await (*cluster)->WaitForClean();
    const sim::SimTime elapsed = sim::Scheduler::Current().now() - t0;
    const auto& rs = (*cluster)->recovery().stats();
    EXPECT_GT(rs.bytes_pushed, 0u);
    // bytes / rate, minus the burst the bucket started with.
    const double floor_s =
        (static_cast<double>(rs.bytes_pushed) - 64.0 * 1024) / (1 << 20);
    EXPECT_GT(static_cast<double>(elapsed) / 1e9, floor_s * 0.9);
    co_await (*cluster)->Drain();
  });
}

// Runs `ops` sequential 16 KiB writes and returns the sim-clock duration.
sim::Task<sim::SimTime> TimedWrites(Cluster& cluster, int ops,
                                    uint64_t tenant) {
  auto io = cluster.ioctx(tenant);
  Rng rng(13);
  const Bytes data = rng.RandomBytes(16384);
  const sim::SimTime t0 = sim::Scheduler::Current().now();
  for (int i = 0; i < ops; ++i) {
    Status s = co_await io.WriteFull("qos." + std::to_string(i), data);
    if (!s.ok()) co_return 0;
  }
  co_return sim::Scheduler::Current().now() - t0;
}

TEST(ClusterQos, SingleDefaultTenantMatchesDisabledClock) {
  sim::SimTime base = 0, mclock = 0;
  testutil::RunSim([&]() -> sim::Task<void> {
    auto cluster = co_await Cluster::Create(SmallCluster());
    CO_ASSERT_OK(cluster.status());
    base = co_await TimedWrites(**cluster, 48, 0);
    co_await (*cluster)->Drain();
  });
  testutil::RunSim([&]() -> sim::Task<void> {
    ClusterConfig config = SmallCluster();
    config.qos.enabled = true;  // one untagged tenant, no caps
    auto cluster = co_await Cluster::Create(config);
    CO_ASSERT_OK(cluster.status());
    mclock = co_await TimedWrites(**cluster, 48, 0);
    co_await (*cluster)->Drain();
  });
  ASSERT_GT(base, 0u);
  EXPECT_EQ(base, mclock)
      << "mClock with a single uncapped tenant must not move the clock";
}

TEST(ClusterQos, LimitCapsTenantThroughput) {
  testutil::RunSim([]() -> sim::Task<void> {
    ClusterConfig config = SmallCluster();
    config.qos.enabled = true;
    config.qos.tenants.push_back(
        TenantSpec{/*id=*/1, /*reservation_iops=*/0, /*weight=*/1.0,
                   /*limit_iops=*/100});
    auto cluster = co_await Cluster::Create(config);
    CO_ASSERT_OK(cluster.status());
    // The limit clock is per OSD (as in Ceph's dmclock): hammer one object
    // so every op lands on the same primary's L tag chain.
    auto io = (*cluster)->ioctx(1);
    Rng rng(13);
    const Bytes data = rng.RandomBytes(16384);
    const sim::SimTime t0 = sim::Scheduler::Current().now();
    for (int i = 0; i < 51; ++i) {
      CO_ASSERT_OK(co_await io.WriteFull("qos.limit", data));
    }
    const sim::SimTime elapsed = sim::Scheduler::Current().now() - t0;
    // 51 ops at 100 IOPS: >= 0.5 s of limit spacing.
    EXPECT_GT(elapsed, static_cast<sim::SimTime>(450) * sim::kMs);
    co_await (*cluster)->Drain();
  });
}

TEST(ClusterQos, ReservationShieldsVictimFromGreedyNeighbor) {
  testutil::RunSim([]() -> sim::Task<void> {
    ClusterConfig config = SmallCluster();
    config.qos.enabled = true;
    config.qos.tenants.push_back(
        TenantSpec{/*id=*/1, /*reservation_iops=*/0, /*weight=*/8.0,
                   /*limit_iops=*/0});  // greedy
    config.qos.tenants.push_back(
        TenantSpec{/*id=*/2, /*reservation_iops=*/2000, /*weight=*/1.0,
                   /*limit_iops=*/0});  // victim with a floor
    auto cluster = co_await Cluster::Create(config);
    CO_ASSERT_OK(cluster.status());

    // Saturate every OSD with greedy traffic, then measure the victim.
    bool stop = false;
    sim::WaitGroup wg;
    for (int w = 0; w < 64; ++w) {
      wg.Add(1);
      sim::Scheduler::Current().Spawn(
          [](Cluster* c, bool* stop, sim::WaitGroup* wg,
             int seed) -> sim::Task<void> {
            auto io = c->ioctx(1);
            Rng rng(100 + seed);
            const Bytes data = rng.RandomBytes(16384);
            int i = 0;
            while (!*stop) {
              co_await io.WriteFull(
                  "greedy." + std::to_string(seed) + "." +
                      std::to_string(i++ % 8),
                  data);
            }
            wg->Done();
          }(&**cluster, &stop, &wg, w));
    }
    co_await sim::Sleep{50 * sim::kMs};  // let the greedy queues build
    const sim::SimTime victim_time = co_await [](Cluster* c)
        -> sim::Task<sim::SimTime> {
      auto io = c->ioctx(2);
      Rng rng(14);
      const Bytes data = rng.RandomBytes(16384);
      const sim::SimTime t0 = sim::Scheduler::Current().now();
      for (int i = 0; i < 32; ++i) {
        co_await io.WriteFull("victim." + std::to_string(i), data);
      }
      co_return sim::Scheduler::Current().now() - t0;
    }(&**cluster);
    stop = true;
    co_await wg.Wait();
    co_await (*cluster)->Drain();

    // With a 2000-IOPS reservation the victim's 32 sequential ops should
    // ride the R phase past the greedy backlog: well under the time 32 ops
    // would take at the back of a 64-deep weight-8 queue.
    uint64_t reservation_dispatches = 0;
    for (size_t i = 0; i < (*cluster)->osd_count(); ++i) {
      const auto* q = (*cluster)->osd(i).qos();
      CO_ASSERT_TRUE(q != nullptr);
      auto it = q->tenant_stats().find(2);
      if (it != q->tenant_stats().end()) {
        reservation_dispatches += it->second.reservation_dispatches;
      }
    }
    EXPECT_GT(reservation_dispatches, 0u);
    EXPECT_LT(victim_time, static_cast<sim::SimTime>(2) * sim::kSec);
  });
}

TEST(ClusterQos, ImageOpsCarryTenantTag) {
  testutil::RunSim([]() -> sim::Task<void> {
    ClusterConfig config = SmallCluster();
    config.qos.enabled = true;
    auto cluster = co_await Cluster::Create(config);
    CO_ASSERT_OK(cluster.status());

    rbd::ImageOptions options;
    options.size = 64ull << 20;
    options.tenant =
        TenantSpec{/*id=*/42, /*reservation_iops=*/0, /*weight=*/2.0,
                   /*limit_iops=*/0};
    auto image =
        co_await rbd::Image::Create(**cluster, "tagged", "pw", options);
    CO_ASSERT_OK(image.status());
    Rng rng(15);
    Bytes buf = rng.RandomBytes(65536);
    CO_ASSERT_OK(
        co_await (*image)->Write(0, ByteSpan(buf.data(), buf.size())));
    CO_ASSERT_OK(co_await (*image)->Flush());
    co_await (*cluster)->Drain();

    uint64_t tagged_ops = 0;
    for (size_t i = 0; i < (*cluster)->osd_count(); ++i) {
      const auto* q = (*cluster)->osd(i).qos();
      CO_ASSERT_TRUE(q != nullptr);
      auto it = q->tenant_stats().find(42);
      if (it != q->tenant_stats().end()) tagged_ops += it->second.admitted;
    }
    EXPECT_GT(tagged_ops, 0u)
        << "image IO must reach the OSDs under its tenant id";
  });
}

}  // namespace
}  // namespace vde::rados
