// Placement v2 (versioned OSD maps): v1 bit-identity on healthy uniform
// maps, movement bounds on OSD add/loss, acting-set correctness with down
// OSDs, weighted placement, and epoch semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "rados/placement.h"

namespace vde::rados {
namespace {

// The pre-v2 algorithm, reimplemented verbatim as a reference: rendezvous
// over all nodes, then rendezvous over each node's OSDs by local index.
// ActingFor on an all-up, uniform-weight map must match this bit-for-bit —
// that is the "disabled path is bit-identical" contract.
std::vector<size_t> V1ActingFor(uint32_t pg, size_t nodes,
                                size_t osds_per_node, size_t replication) {
  std::vector<std::pair<uint64_t, size_t>> scored;
  for (size_t node = 0; node < nodes; ++node) {
    scored.emplace_back(HashMix(pg * 0x9E3779B1ULL + node * 0xDEADBEEFULL),
                        node);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<size_t> osds;
  for (size_t r = 0; r < std::min(replication, nodes); ++r) {
    const size_t node = scored[r].second;
    uint64_t best_hash = 0;
    size_t best = 0;
    bool found = false;
    for (size_t local = 0; local < osds_per_node; ++local) {
      const uint64_t hash =
          HashMix((uint64_t{pg} << 32) ^ (node << 16) ^ local);
      if (!found || hash >= best_hash) {
        best_hash = hash;
        best = node * osds_per_node + local;
        found = true;
      }
    }
    osds.push_back(best);
  }
  return osds;
}

PlacementConfig Config(uint32_t pgs = 256, size_t nodes = 3,
                       size_t osds_per_node = 9, size_t replication = 3) {
  return PlacementConfig{pgs, nodes, osds_per_node, replication};
}

TEST(PlacementV2, HealthyUniformMapMatchesV1BitForBit) {
  for (size_t osds_per_node : {1u, 4u, 9u}) {
    OsdMap map(Config(512, 3, osds_per_node, 3));
    for (uint32_t pg = 0; pg < 512; ++pg) {
      EXPECT_EQ(map.ActingFor(pg), V1ActingFor(pg, 3, osds_per_node, 3))
          << "pg " << pg << " osds_per_node " << osds_per_node;
    }
  }
}

TEST(PlacementV2, MappingIsDeterministic) {
  OsdMap a(Config());
  OsdMap b(Config());
  a.MarkDown(4);
  b.MarkDown(4);
  for (uint32_t pg = 0; pg < a.pg_count(); ++pg) {
    EXPECT_EQ(a.ActingFor(pg), b.ActingFor(pg));
  }
}

TEST(PlacementV2, EpochBumpsOnlyOnRealChanges) {
  OsdMap map(Config());
  const uint64_t e0 = map.epoch();
  map.MarkDown(3);
  EXPECT_EQ(map.epoch(), e0 + 1);
  map.MarkDown(3);  // no-op: already down
  EXPECT_EQ(map.epoch(), e0 + 1);
  map.MarkUp(3);
  EXPECT_EQ(map.epoch(), e0 + 2);
  map.SetWeight(5, 1.0);  // no-op: unchanged weight
  EXPECT_EQ(map.epoch(), e0 + 2);
  map.SetWeight(5, 2.0);
  EXPECT_EQ(map.epoch(), e0 + 3);
  map.AddOsd(0);
  EXPECT_EQ(map.epoch(), e0 + 4);
}

TEST(PlacementV2, DownOsdLeavesOtherSlotsUntouched) {
  OsdMap map(Config());
  std::vector<std::vector<size_t>> before;
  for (uint32_t pg = 0; pg < map.pg_count(); ++pg) {
    before.push_back(map.ActingFor(pg));
  }
  const size_t down = 7;
  map.MarkDown(down);
  size_t moved = 0;
  for (uint32_t pg = 0; pg < map.pg_count(); ++pg) {
    const auto after = map.ActingFor(pg);
    ASSERT_EQ(after.size(), before[pg].size());
    for (size_t r = 0; r < after.size(); ++r) {
      if (before[pg][r] == down) {
        // Replacement stays on the same node — cross-node layout is a pure
        // function of (pg, node) eligibility, untouched by OSD churn.
        EXPECT_NE(after[r], down);
        EXPECT_EQ(map.NodeOf(after[r]), map.NodeOf(down));
        moved++;
      } else {
        EXPECT_EQ(after[r], before[pg][r]) << "pg " << pg << " slot " << r;
      }
    }
  }
  // The downed OSD held ~1/osd_count of all slots; everything else stayed.
  const size_t slots = map.pg_count() * 3;
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, 3 * slots / map.osd_count());
}

TEST(PlacementV2, AddOsdMovesOnlyItsShare) {
  OsdMap map(Config(512));
  std::vector<std::vector<size_t>> before;
  for (uint32_t pg = 0; pg < map.pg_count(); ++pg) {
    before.push_back(map.ActingFor(pg));
  }
  const size_t added = map.AddOsd(1);
  EXPECT_EQ(map.osd_count(), 28u);
  size_t moved = 0;
  for (uint32_t pg = 0; pg < map.pg_count(); ++pg) {
    const auto after = map.ActingFor(pg);
    ASSERT_EQ(after.size(), before[pg].size());
    for (size_t r = 0; r < after.size(); ++r) {
      if (after[r] == added) {
        // The newcomer only claims slots on its own node.
        EXPECT_EQ(map.NodeOf(before[pg][r]), 1u);
        moved++;
      } else {
        EXPECT_EQ(after[r], before[pg][r]) << "pg " << pg << " slot " << r;
      }
    }
  }
  // Expected share: the node holds pg_count slots (one per PG with 3-way
  // replication over 3 nodes); the new OSD should win ~1/10 of them.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, map.pg_count() / 4);
}

TEST(PlacementV2, ActingSetsExcludeDownOsdsAndShrinkWithDownNodes) {
  OsdMap map(Config(128, 3, 2, 3));
  map.MarkDown(0);
  for (uint32_t pg = 0; pg < map.pg_count(); ++pg) {
    for (size_t id : map.ActingFor(pg)) {
      EXPECT_TRUE(map.IsUp(id));
    }
  }
  map.MarkDown(1);  // node 0 fully down -> width degrades to 2
  for (uint32_t pg = 0; pg < map.pg_count(); ++pg) {
    const auto acting = map.ActingFor(pg);
    EXPECT_EQ(acting.size(), 2u);
    for (size_t id : acting) EXPECT_NE(map.NodeOf(id), 0u);
  }
}

TEST(PlacementV2, UniformWeightChangeMovesNothing) {
  OsdMap base(Config());
  OsdMap scaled(Config());
  // Same weight everywhere is still uniform: the raw-hash path must keep
  // deciding, so nothing moves.
  for (size_t id = 0; id < scaled.osd_count(); ++id) {
    scaled.SetWeight(id, 2.5);
  }
  for (uint32_t pg = 0; pg < base.pg_count(); ++pg) {
    EXPECT_EQ(base.ActingFor(pg), scaled.ActingFor(pg));
  }
}

TEST(PlacementV2, HeavierOsdTakesProportionallyMoreSlots) {
  OsdMap map(Config(2048, 3, 3, 3));
  map.SetWeight(0, 3.0);  // node 0, first OSD: 3x its siblings
  std::map<size_t, size_t> wins;
  for (uint32_t pg = 0; pg < map.pg_count(); ++pg) {
    for (size_t id : map.ActingFor(pg)) {
      if (map.NodeOf(id) == 0) wins[id]++;
    }
  }
  // Node 0 holds 2048 slots split 3:1:1 -> expect ~1228/409/409. Allow a
  // wide band; the point is the skew direction and rough proportion.
  EXPECT_GT(wins[0], 2 * wins[1]);
  EXPECT_GT(wins[0], 2 * wins[2]);
  EXPECT_GT(wins[1], 200u);
  EXPECT_GT(wins[2], 200u);
}

TEST(PlacementV2, ZeroWeightExcludesOsd) {
  OsdMap map(Config());
  map.SetWeight(2, 0.0);
  for (uint32_t pg = 0; pg < map.pg_count(); ++pg) {
    for (size_t id : map.ActingFor(pg)) EXPECT_NE(id, 2u);
  }
}

TEST(PlacementV2, DownThenUpRestoresOriginalLayout) {
  OsdMap map(Config());
  std::vector<std::vector<size_t>> before;
  for (uint32_t pg = 0; pg < map.pg_count(); ++pg) {
    before.push_back(map.ActingFor(pg));
  }
  map.MarkDown(11);
  map.MarkUp(11);
  for (uint32_t pg = 0; pg < map.pg_count(); ++pg) {
    EXPECT_EQ(map.ActingFor(pg), before[pg]) << "pg " << pg;
  }
}

}  // namespace
}  // namespace vde::rados
