// Cluster tests: placement properties, replication, transactions across the
// network, snapshots through the client API, and failure of invariants.
#include <gtest/gtest.h>

#include <set>

#include "../testutil.h"
#include "rados/cluster.h"
#include "util/rng.h"

namespace vde::rados {
namespace {

ClusterConfig SmallCluster() {
  ClusterConfig c;
  c.store.journal_size = 8ull << 20;
  c.store.kv_region_size = 32ull << 20;
  return c;
}

TEST(Placement, DeterministicAndReplicaCountCorrect) {
  Placement p(PlacementConfig{128, 3, 9, 3});
  const auto a = p.OsdsFor("rbd_data.1.000001");
  const auto b = p.OsdsFor("rbd_data.1.000001");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 3u);
}

TEST(Placement, ReplicasOnDistinctNodes) {
  Placement p(PlacementConfig{128, 3, 9, 3});
  for (int i = 0; i < 200; ++i) {
    const auto osds = p.OsdsFor("obj" + std::to_string(i));
    std::set<size_t> nodes;
    for (size_t osd : osds) nodes.insert(osd / 9);
    EXPECT_EQ(nodes.size(), 3u) << "replicas must span all 3 nodes";
  }
}

TEST(Placement, PrimariesSpreadAcrossOsds) {
  Placement p(PlacementConfig{256, 3, 9, 3});
  std::map<size_t, int> primary_count;
  for (int i = 0; i < 2000; ++i) {
    primary_count[p.OsdsFor("img." + std::to_string(i))[0]]++;
  }
  // All 27 OSDs should serve as primary for some objects.
  EXPECT_EQ(primary_count.size(), 27u);
  for (const auto& [osd, count] : primary_count) {
    EXPECT_GT(count, 2000 / 27 / 4) << "osd " << osd << " badly underloaded";
  }
}

TEST(Placement, DifferentPgCountsStillValid) {
  for (uint32_t pgs : {8u, 64u, 512u}) {
    Placement p(PlacementConfig{pgs, 3, 9, 3});
    const auto osds = p.OsdsFor("x");
    EXPECT_EQ(osds.size(), 3u);
  }
}

TEST(Cluster, WriteReplicatesToAllActingOsds) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await Cluster::Create(SmallCluster());
    CO_ASSERT_OK(cluster.status());
    auto io = (*cluster)->ioctx();
    Rng rng(1);
    const Bytes data = rng.RandomBytes(8192);
    CO_ASSERT_OK(co_await io.WriteFull("replobj", data));

    const auto acting = (*cluster)->placement().OsdsFor("replobj");
    CO_ASSERT_EQ(acting.size(), 3u);
    for (size_t osd_id : acting) {
      EXPECT_TRUE((*cluster)->osd(osd_id).store().ObjectExists("replobj"))
          << "osd " << osd_id;
      EXPECT_EQ((*cluster)->osd(osd_id).store().ObjectSize("replobj"), 8192u);
    }
    // Non-acting OSDs must NOT have the object.
    size_t have = 0;
    for (size_t i = 0; i < (*cluster)->osd_count(); ++i) {
      if ((*cluster)->osd(i).store().ObjectExists("replobj")) have++;
    }
    EXPECT_EQ(have, 3u);
  });
}

TEST(Cluster, ReadReturnsWrittenData) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await Cluster::Create(SmallCluster());
    auto io = (*cluster)->ioctx();
    Rng rng(2);
    const Bytes data = rng.RandomBytes(65536);
    CO_ASSERT_OK(co_await io.WriteFull("robj", data));
    auto got = co_await io.Read("robj", 0, 65536);
    CO_ASSERT_OK(got.status());
    EXPECT_EQ(*got, data);
    // Partial read.
    auto part = co_await io.Read("robj", 4096, 8192);
    CO_ASSERT_OK(part.status());
    EXPECT_TRUE(std::equal(part->begin(), part->end(), data.begin() + 4096));
  });
}

TEST(Cluster, TransactionWithDataAndOmap) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await Cluster::Create(SmallCluster());
    auto io = (*cluster)->ioctx();
    Rng rng(3);
    objstore::Transaction txn;
    objstore::OsdOp w;
    w.type = objstore::OsdOp::Type::kWrite;
    w.offset = 0;
    w.length = 4096;
    w.data = rng.RandomBytes(4096);
    objstore::OsdOp o;
    o.type = objstore::OsdOp::Type::kOmapSet;
    Bytes key(8);
    StoreU64Be(key.data(), 0);
    const Bytes iv = rng.RandomBytes(16);
    o.omap_kvs.emplace_back(key, iv);
    txn.ops.push_back(std::move(w));
    txn.ops.push_back(std::move(o));
    CO_ASSERT_OK(co_await io.Operate("txobj", std::move(txn), {}));

    // Read data + omap in one op (parallel at the OSD).
    objstore::Transaction get;
    objstore::OsdOp r;
    r.type = objstore::OsdOp::Type::kRead;
    r.offset = 0;
    r.length = 4096;
    objstore::OsdOp g;
    g.type = objstore::OsdOp::Type::kOmapGetRange;
    get.ops.push_back(std::move(r));
    get.ops.push_back(std::move(g));
    auto got = co_await io.OperateRead("txobj", std::move(get));
    CO_ASSERT_OK(got.status());
    EXPECT_EQ(got->data.size(), 4096u);
    CO_ASSERT_EQ(got->omap_values.size(), 1u);
    EXPECT_EQ(got->omap_values[0].second, iv);
  });
}

TEST(Cluster, SnapshotReadThroughClient) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await Cluster::Create(SmallCluster());
    auto io = (*cluster)->ioctx();
    CO_ASSERT_OK(co_await io.WriteFull("snapper", Bytes(4096, 0x11)));
    const uint64_t snap = (*cluster)->AllocateSnapId();
    objstore::SnapContext snapc{snap, {snap}};
    objstore::Transaction txn;
    objstore::OsdOp w;
    w.type = objstore::OsdOp::Type::kWriteFull;
    w.data = Bytes(4096, 0x22);
    txn.ops.push_back(std::move(w));
    CO_ASSERT_OK(co_await io.Operate("snapper", std::move(txn), snapc));

    auto head = co_await io.Read("snapper", 0, 4096);
    auto old = co_await io.Read("snapper", 0, 4096, snap);
    CO_ASSERT_OK(head.status());
    CO_ASSERT_OK(old.status());
    EXPECT_EQ((*head)[0], 0x22);
    EXPECT_EQ((*old)[0], 0x11);
  });
}

TEST(Cluster, WritesAdvanceSimulatedTime) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await Cluster::Create(SmallCluster());
    auto io = (*cluster)->ioctx();
    const auto t0 = sim::Scheduler::Current().now();
    CO_ASSERT_OK(co_await io.WriteFull("timed", Bytes(4096, 1)));
    const auto elapsed = sim::Scheduler::Current().now() - t0;
    // Write must cost at least the primary+replica software path.
    EXPECT_GT(elapsed, 500 * sim::kUs);
    EXPECT_LT(elapsed, 5 * sim::kMs);
  });
}

TEST(Cluster, ReadsCheaperThanWrites) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await Cluster::Create(SmallCluster());
    auto io = (*cluster)->ioctx();
    CO_ASSERT_OK(co_await io.WriteFull("rw", Bytes(4096, 1)));
    co_await (*cluster)->Drain();

    const auto t0 = sim::Scheduler::Current().now();
    (void)co_await io.Read("rw", 0, 4096);
    const auto read_time = sim::Scheduler::Current().now() - t0;

    const auto t1 = sim::Scheduler::Current().now();
    CO_ASSERT_OK(co_await io.WriteFull("rw", Bytes(4096, 2)));
    const auto write_time = sim::Scheduler::Current().now() - t1;
    EXPECT_LT(read_time, write_time)
        << "replication must make writes slower than reads";
  });
}

TEST(Cluster, DeviceStatsAggregate) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto cluster = co_await Cluster::Create(SmallCluster());
    auto io = (*cluster)->ioctx();
    CO_ASSERT_OK(co_await io.WriteFull("statobj", Bytes(16384, 5)));
    co_await (*cluster)->Drain();
    const auto stats = (*cluster)->TotalDeviceStats();
    // 3 replicas x (journal write + data apply) at minimum.
    EXPECT_GE(stats.write_ops, 6u);
    EXPECT_GE(stats.bytes_written, 3u * 2 * 16384);
  });
}

}  // namespace
}  // namespace vde::rados
