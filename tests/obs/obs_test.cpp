// Observability-plane unit tests: the metrics tree (nesting, lookup, text
// and JSON rendering), the bounded tracer ring, the exclusive frontier
// attribution in TraceContext, the op tracker's slow-op log, and the
// Chrome trace export format.
#include <gtest/gtest.h>

#include "../testutil.h"
#include "obs/metrics.h"
#include "obs/op_tracker.h"
#include "obs/plane.h"
#include "obs/trace.h"

namespace vde::obs {
namespace {

// --- Metrics tree ---

TEST(Metrics, TreeLookupAndRender) {
  Metrics root;
  root.Counter("events", 42);
  root.Gauge("load", 0.5);
  Metrics& image = root.Child("image");
  image.Counter("writes", 7);
  image.Child("wb").Counter("stages", 3);
  Histogram h;
  h.Add(1000);
  image.Hist("latency_ns", h);

  ASSERT_NE(root.FindCounter("events"), nullptr);
  EXPECT_EQ(*root.FindCounter("events"), 42u);
  ASSERT_NE(root.FindCounter("image.writes"), nullptr);
  EXPECT_EQ(*root.FindCounter("image.writes"), 7u);
  ASSERT_NE(root.FindCounter("image.wb.stages"), nullptr);
  EXPECT_EQ(*root.FindCounter("image.wb.stages"), 3u);
  ASSERT_NE(root.FindGauge("load"), nullptr);
  EXPECT_DOUBLE_EQ(*root.FindGauge("load"), 0.5);
  ASSERT_NE(root.FindHist("image.latency_ns"), nullptr);
  EXPECT_EQ(root.FindHist("image.latency_ns")->count(), 1u);
  // Misses: wrong leaf, wrong branch, wrong kind.
  EXPECT_EQ(root.FindCounter("image.reads"), nullptr);
  EXPECT_EQ(root.FindCounter("nosuch.writes"), nullptr);
  EXPECT_EQ(root.FindCounter("load"), nullptr);
  EXPECT_EQ(root.CounterOr("image.writes"), 7u);
  EXPECT_EQ(root.CounterOr("image.reads", 99), 99u);

  const std::string text = root.ToText();
  EXPECT_NE(text.find("events = 42"), std::string::npos);
  EXPECT_NE(text.find("image.wb.stages = 3"), std::string::npos);

  const std::string json = root.ToJson();
  EXPECT_NE(json.find("\"events\":42"), std::string::npos);
  EXPECT_NE(json.find("\"children\""), std::string::npos);
  EXPECT_NE(json.find("\"wb\""), std::string::npos);
}

TEST(Metrics, EmptyAndEscaping) {
  Metrics m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.ToJson(), "{}");
  m.Counter("x", 1);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape(std::string("\x01", 1)), "\\u0001");
}

// --- Tracer ring ---

TEST(Tracer, RingBoundAndDropCount) {
  Tracer t(4);
  for (uint64_t i = 0; i < 10; ++i) {
    t.Record(i, Stage::kStore, i * 100, 50);
  }
  EXPECT_EQ(t.capacity(), 4u);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.recorded(), 10u);
  EXPECT_EQ(t.dropped(), 6u);
  // Oldest-first: the retained window is ops 6..9.
  const std::vector<Span> spans = t.Spans();
  ASSERT_EQ(spans.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].op_id, 6 + i);
    EXPECT_EQ(spans[i].start, (6 + i) * 100);
  }
}

TEST(Tracer, ChromeExportFormat) {
  Tracer t(8);
  t.Record(3, Stage::kDevice, 2000, 1500);
  const std::string json = t.ExportChromeJson();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"device\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // ts/dur are microseconds: 2000 ns -> 2.000 us, 1500 ns -> 1.500 us.
  EXPECT_NE(json.find("\"ts\":2.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
}

// --- Frontier attribution ---

TEST(TraceContext, ExclusiveAttributionPartitionsLatency) {
  testutil::RunSim([]() -> sim::Task<void> {
    TraceContext ctx(nullptr, 1, OpKind::kWrite, 0, 4096,
                     sim::Scheduler::Current().now());
    // 10us unattributed -> other.
    co_await sim::Sleep{10 * sim::kUs};
    ctx.Enter(Stage::kStore);
    co_await sim::Sleep{20 * sim::kUs};
    // Nested deeper stage: device wins the overlap.
    ctx.Enter(Stage::kDevice);
    co_await sim::Sleep{30 * sim::kUs};
    EXPECT_EQ(ctx.Current(), Stage::kDevice);
    ctx.Exit(Stage::kDevice);
    co_await sim::Sleep{5 * sim::kUs};
    ctx.Exit(Stage::kStore);
    const sim::SimTime end = sim::Scheduler::Current().now();
    ctx.AccountUpTo(end);

    const auto& ns = ctx.stage_ns();
    EXPECT_EQ(ns[static_cast<size_t>(Stage::kOther)], 10 * sim::kUs);
    EXPECT_EQ(ns[static_cast<size_t>(Stage::kStore)], 25 * sim::kUs);
    EXPECT_EQ(ns[static_cast<size_t>(Stage::kDevice)], 30 * sim::kUs);
    sim::SimTime sum = 0;
    for (sim::SimTime v : ns) sum += v;
    EXPECT_EQ(sum, end - ctx.submit_ns());
  });
}

TEST(TraceContext, ConcurrentSameStageNests) {
  testutil::RunSim([]() -> sim::Task<void> {
    TraceContext ctx(nullptr, 1, OpKind::kRead, 0, 4096,
                     sim::Scheduler::Current().now());
    // Two chunks in kStore concurrently: the overlap must count once.
    ctx.Enter(Stage::kStore);
    co_await sim::Sleep{10 * sim::kUs};
    ctx.Enter(Stage::kStore);
    co_await sim::Sleep{10 * sim::kUs};
    ctx.Exit(Stage::kStore);
    EXPECT_EQ(ctx.Current(), Stage::kStore);  // one entry still active
    co_await sim::Sleep{10 * sim::kUs};
    ctx.Exit(Stage::kStore);
    EXPECT_EQ(ctx.Current(), Stage::kOther);
    const auto& ns = ctx.stage_ns();
    EXPECT_EQ(ns[static_cast<size_t>(Stage::kStore)], 30 * sim::kUs);
    EXPECT_EQ(ns[static_cast<size_t>(Stage::kOther)], 0u);
  });
}

TEST(TraceContext, StageNsAtIncludesPending) {
  testutil::RunSim([]() -> sim::Task<void> {
    TraceContext ctx(nullptr, 1, OpKind::kRead, 0, 512,
                     sim::Scheduler::Current().now());
    ctx.Enter(Stage::kWb);
    co_await sim::Sleep{7 * sim::kUs};
    // Non-mutating snapshot: pending interval shows up, state unchanged.
    const auto at = ctx.StageNsAt(sim::Scheduler::Current().now());
    EXPECT_EQ(at[static_cast<size_t>(Stage::kWb)], 7 * sim::kUs);
    EXPECT_EQ(ctx.stage_ns()[static_cast<size_t>(Stage::kWb)], 0u);
    ctx.Exit(Stage::kWb);
    EXPECT_EQ(ctx.stage_ns()[static_cast<size_t>(Stage::kWb)], 7 * sim::kUs);
  });
}

TEST(SpanScope, RecordsAndEndIsIdempotent) {
  testutil::RunSim([]() -> sim::Task<void> {
    Tracer tracer(8);
    TraceContext ctx(&tracer, 5, OpKind::kWrite, 0, 4096,
                     sim::Scheduler::Current().now());
    {
      SpanScope scope(&ctx, Stage::kCrypto);
      co_await sim::Sleep{3 * sim::kUs};
      scope.End();
      scope.End();  // no double record
      co_await sim::Sleep{1 * sim::kUs};
    }
    EXPECT_EQ(tracer.recorded(), 1u);
    const std::vector<Span> spans = tracer.Spans();
    CO_ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].op_id, 5u);
    EXPECT_EQ(spans[0].stage, Stage::kCrypto);
    EXPECT_EQ(spans[0].dur, 3 * sim::kUs);
    // Null context: every operation is a no-op.
    SpanScope null_scope(nullptr, Stage::kDevice);
    null_scope.End();
    EXPECT_EQ(tracer.recorded(), 1u);
  });
}

// --- OpTracker ---

TEST(OpTracker, SlowLogRetainsSlowestInOrder) {
  testutil::RunSim([]() -> sim::Task<void> {
    Tracer tracer(64);
    OpTracker tracker(3);
    // Five ops with latencies 10, 50, 30, 20, 40 us.
    const uint64_t lat_us[] = {10, 50, 30, 20, 40};
    for (uint64_t i = 0; i < 5; ++i) {
      auto ctx = std::make_shared<TraceContext>(
          &tracer, i + 1, OpKind::kRead, i * 4096, 4096,
          sim::Scheduler::Current().now());
      tracker.OnBegin(ctx);
      ctx->AccountUpTo(ctx->submit_ns() + lat_us[i] * sim::kUs);
      tracker.OnEnd(*ctx, ctx->submit_ns() + lat_us[i] * sim::kUs,
                    /*ok=*/true);
    }
    EXPECT_EQ(tracker.started(), 5u);
    EXPECT_EQ(tracker.finished(), 5u);
    EXPECT_EQ(tracker.inflight_count(), 0u);
    const auto& slow = tracker.SlowOps();
    CO_ASSERT_EQ(slow.size(), 3u);  // capacity bound
    EXPECT_EQ(slow[0].latency_ns, 50 * sim::kUs);
    EXPECT_EQ(slow[1].latency_ns, 40 * sim::kUs);
    EXPECT_EQ(slow[2].latency_ns, 30 * sim::kUs);
    EXPECT_EQ(slow[0].id, 2u);
    const std::string dump = tracker.FormatSlowOps(2);
    EXPECT_NE(dump.find("op 2"), std::string::npos);
    EXPECT_NE(dump.find("op 5"), std::string::npos);
    EXPECT_EQ(dump.find("op 3"), std::string::npos);  // limit respected
    co_return;
  });
}

TEST(OpTracker, InFlightSnapshot) {
  testutil::RunSim([]() -> sim::Task<void> {
    Tracer tracer(64);
    OpTracker tracker(4);
    auto a = std::make_shared<TraceContext>(&tracer, 1, OpKind::kWrite, 0,
                                            4096,
                                            sim::Scheduler::Current().now());
    tracker.OnBegin(a);
    a->Enter(Stage::kStore);
    co_await sim::Sleep{12 * sim::kUs};
    auto b = std::make_shared<TraceContext>(&tracer, 2, OpKind::kDiscard,
                                            8192, 4096,
                                            sim::Scheduler::Current().now());
    tracker.OnBegin(b);
    co_await sim::Sleep{5 * sim::kUs};

    const sim::SimTime now = sim::Scheduler::Current().now();
    const auto inflight = tracker.InFlight(now);
    CO_ASSERT_EQ(inflight.size(), 2u);
    EXPECT_EQ(inflight[0].id, 1u);  // oldest submit first
    EXPECT_EQ(inflight[0].latency_ns, 17 * sim::kUs);
    EXPECT_EQ(inflight[0].stage_ns[static_cast<size_t>(Stage::kStore)],
              17 * sim::kUs);
    EXPECT_EQ(inflight[1].id, 2u);
    EXPECT_EQ(inflight[1].latency_ns, 5 * sim::kUs);
    const std::string dump = tracker.FormatInFlight(now);
    EXPECT_NE(dump.find("discard"), std::string::npos);

    a->Exit(Stage::kStore);
    tracker.OnEnd(*a, now, true);
    tracker.OnEnd(*b, now, true);
    EXPECT_EQ(tracker.inflight_count(), 0u);
  });
}

// --- Plane ---

TEST(Plane, DisabledHandsOutNull) {
  testutil::RunSim([]() -> sim::Task<void> {
    Plane plane(Config{});  // disabled by default
    EXPECT_FALSE(plane.enabled());
    auto ctx = plane.BeginOp(OpKind::kWrite, 0, 4096);
    EXPECT_EQ(ctx, nullptr);
    plane.EndOp(ctx, sim::Scheduler::Current().now(), true);  // null-safe
    EXPECT_EQ(plane.latency_hist().count(), 0u);
    co_return;
  });
}

TEST(Plane, EnabledFeedsHistogramsAndTracker) {
  testutil::RunSim([]() -> sim::Task<void> {
    Config config;
    config.enabled = true;
    config.slow_ops = 8;
    Plane plane(config);
    auto ctx = plane.BeginOp(OpKind::kRead, 4096, 512);
    CO_ASSERT_TRUE(ctx != nullptr);
    ctx->Enter(Stage::kDevice);
    co_await sim::Sleep{9 * sim::kUs};
    ctx->Exit(Stage::kDevice);
    plane.EndOp(ctx, sim::Scheduler::Current().now(), true);

    EXPECT_EQ(plane.latency_hist().count(), 1u);
    EXPECT_EQ(plane.latency_hist().sum(), 9 * sim::kUs);
    const auto& stages = plane.stage_hists();
    EXPECT_EQ(stages[static_cast<size_t>(Stage::kDevice)].sum(),
              9 * sim::kUs);
    EXPECT_EQ(plane.op_tracker().finished(), 1u);

    Metrics node;
    plane.ExportMetrics(node);
    EXPECT_EQ(node.CounterOr("ops_finished"), 1u);
    CO_ASSERT_TRUE(node.FindHist("latency_ns") != nullptr);
    EXPECT_EQ(node.FindHist("latency_ns")->count(), 1u);
  });
}

}  // namespace
}  // namespace vde::obs
