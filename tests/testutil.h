// Shared helpers for simulation-based tests.
//
// gtest's ASSERT_* macros issue a plain `return`, which is ill-formed inside
// a coroutine; CO_ASSERT_* below records the failure and `co_return`s.
// EXPECT_* macros work unchanged in coroutines.
#pragma once

#include <gtest/gtest.h>

#include <functional>

#include "sim/scheduler.h"
#include "sim/task.h"

namespace vde::testutil {

// Runs an async test body to completion on a fresh scheduler.
inline void RunSim(std::function<sim::Task<void>()> body) {
  sim::Scheduler sched;
  bool finished = false;
  sched.Spawn([](std::function<sim::Task<void>()> b,
                 bool* done) -> sim::Task<void> {
    co_await b();
    *done = true;
  }(std::move(body), &finished));
  sched.Run();
  ASSERT_TRUE(finished) << "simulation did not run the body to completion "
                           "(deadlock or lost continuation)";
}

}  // namespace vde::testutil

// Coroutine-safe fatal assertions.
#define CO_ASSERT_TRUE(cond)                          \
  do {                                                \
    if (!(cond)) {                                    \
      ADD_FAILURE() << "CO_ASSERT_TRUE(" #cond ")";   \
      co_return;                                      \
    }                                                 \
  } while (0)

#define CO_ASSERT_FALSE(cond)                         \
  do {                                                \
    if ((cond)) {                                     \
      ADD_FAILURE() << "CO_ASSERT_FALSE(" #cond ")";  \
      co_return;                                      \
    }                                                 \
  } while (0)

#define CO_ASSERT_EQ(a, b)                                              \
  do {                                                                  \
    if (!((a) == (b))) {                                                \
      ADD_FAILURE() << "CO_ASSERT_EQ(" #a ", " #b ") failed";           \
      co_return;                                                        \
    }                                                                   \
  } while (0)

#define CO_ASSERT_OK(expr)                                              \
  do {                                                                  \
    const auto& vde_co_status = (expr);                                 \
    if (!vde_co_status.ok()) {                                          \
      ADD_FAILURE() << "CO_ASSERT_OK(" #expr "): "                      \
                    << vde_co_status.ToString();                        \
      co_return;                                                        \
    }                                                                   \
  } while (0)
