// Failure injection: device errors must propagate as clean Status failures
// (no crashes, no partial silent state), and the journal must fence
// incomplete transactions.
#include <gtest/gtest.h>

#include "../testutil.h"
#include "device/nvme.h"
#include "kv/db.h"
#include "objstore/object_store.h"
#include "util/rng.h"

namespace vde::objstore {
namespace {

// Device wrapper that fails every write after a fuse burns out.
class FusedDevice final : public dev::BlockDevice {
 public:
  FusedDevice(dev::BlockDevice& parent, uint64_t writes_until_failure)
      : parent_(parent), fuse_(writes_until_failure) {}

  uint32_t sector_size() const override { return parent_.sector_size(); }
  uint64_t capacity_bytes() const override {
    return parent_.capacity_bytes();
  }

  sim::Task<Status> Read(uint64_t offset, MutByteSpan out) override {
    co_return co_await parent_.Read(offset, out);
  }

  sim::Task<Status> Write(uint64_t offset, ByteSpan data) override {
    if (fuse_ == 0) co_return Status::IoError("injected write failure");
    fuse_--;
    co_return co_await parent_.Write(offset, data);
  }

  const dev::DeviceStats& stats() const override { return parent_.stats(); }

 private:
  dev::BlockDevice& parent_;
  uint64_t fuse_;
};

TEST(FailureInjection, KvWriteFailurePropagates) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    FusedDevice fused(nvme, 3);  // superblock + 2 WAL commits succeed
    auto store = co_await kv::KvStore::Open(fused, kv::KvOptions{});
    CO_ASSERT_OK(store.status());
    auto& kv = **store;
    CO_ASSERT_OK(co_await kv.Put(BytesOf("a"), BytesOf("1")));
    CO_ASSERT_OK(co_await kv.Put(BytesOf("b"), BytesOf("2")));
    const Status s = co_await kv.Put(BytesOf("c"), BytesOf("3"));
    CO_ASSERT_EQ(s.code(), StatusCode::kIoError);
    // Failed put must not be visible (WAL append failed = no commit).
    auto got = co_await kv.Get(BytesOf("c"));
    CO_ASSERT_TRUE(got.ok());
    CO_ASSERT_FALSE(got->has_value());
    // Earlier data still readable.
    auto a = co_await kv.Get(BytesOf("a"));
    CO_ASSERT_TRUE(a.ok() && a->has_value());
  });
}

TEST(FailureInjection, UncommittedBatchInvisibleAfterReopen) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    {
      FusedDevice fused(nvme, 2);  // superblock + 1 WAL commit
      auto store = co_await kv::KvStore::Open(fused, kv::KvOptions{});
      CO_ASSERT_OK(store.status());
      (void)co_await (*store)->Put(BytesOf("committed"), BytesOf("yes"));
      (void)co_await (*store)->Put(BytesOf("lost"), BytesOf("no"));  // fails
    }
    // Reopen on the pristine device: only the committed key survives.
    auto store = co_await kv::KvStore::Open(nvme, kv::KvOptions{});
    CO_ASSERT_OK(store.status());
    auto committed = co_await (*store)->Get(BytesOf("committed"));
    auto lost = co_await (*store)->Get(BytesOf("lost"));
    CO_ASSERT_TRUE(committed.ok() && committed->has_value());
    CO_ASSERT_TRUE(lost.ok());
    CO_ASSERT_FALSE(lost->has_value());
  });
}

TEST(FailureInjection, ConcurrentTransactionsOnOneStoreStayAtomic) {
  // Many concurrent multi-op transactions (data + omap) on one store:
  // every transaction must be all-or-nothing and the store's counters
  // consistent — exercises journal + kv-lane interleavings.
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    StoreConfig cfg;
    cfg.journal_size = 4ull << 20;
    cfg.kv_region_size = 32ull << 20;
    auto store = co_await ObjectStore::Open(nvme, cfg);
    CO_ASSERT_OK(store.status());
    auto& os = **store;

    constexpr int kTxns = 40;
    std::vector<Status> results(kTxns);
    std::vector<sim::Task<void>> tasks;
    for (int i = 0; i < kTxns; ++i) {
      tasks.push_back([](ObjectStore* os, int i, Status* out) -> sim::Task<void> {
        Rng rng(1000 + i);
        Transaction txn;
        txn.oid = "obj" + std::to_string(i % 5);
        OsdOp w;
        w.type = OsdOp::Type::kWrite;
        w.offset = static_cast<uint64_t>(i) * 4096;
        w.length = 4096;
        w.data = rng.RandomBytes(4096);
        OsdOp o;
        o.type = OsdOp::Type::kOmapSet;
        Bytes key(8);
        StoreU64Be(key.data(), static_cast<uint64_t>(i));
        o.omap_kvs.emplace_back(key, rng.RandomBytes(16));
        txn.ops.push_back(std::move(w));
        txn.ops.push_back(std::move(o));
        *out = co_await os->Apply(txn, {});
      }(&os, i, &results[i]));
    }
    co_await sim::WhenAll(std::move(tasks));
    co_await os.Drain();

    for (int i = 0; i < kTxns; ++i) {
      CO_ASSERT_OK(results[i]);
    }
    CO_ASSERT_EQ(os.stats().transactions, static_cast<uint64_t>(kTxns));
    // Every omap row must be present (no lost updates across the kv lane).
    for (int i = 0; i < kTxns; ++i) {
      Transaction get;
      get.oid = "obj" + std::to_string(i % 5);
      OsdOp g;
      g.type = OsdOp::Type::kOmapGetRange;
      Bytes lo(8), hi(8);
      StoreU64Be(lo.data(), static_cast<uint64_t>(i));
      StoreU64Be(hi.data(), static_cast<uint64_t>(i) + 1);
      g.omap_start = lo;
      g.omap_end = hi;
      get.ops.push_back(std::move(g));
      auto got = co_await os.ExecuteRead(get, kHeadSnap);
      CO_ASSERT_OK(got.status());
      CO_ASSERT_EQ(got->omap_values.size(), 1u);
    }
  });
}

TEST(FailureInjection, JournalChurnSurvivesManyCheckpoints) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    StoreConfig cfg;
    cfg.journal_size = 512 * 1024;  // tiny: checkpoint every ~few txns
    cfg.kv_region_size = 32ull << 20;
    auto store = co_await ObjectStore::Open(nvme, cfg);
    CO_ASSERT_OK(store.status());
    auto& os = **store;
    Rng rng(9);
    for (int i = 0; i < 60; ++i) {
      Transaction txn;
      txn.oid = "churn";
      OsdOp w;
      w.type = OsdOp::Type::kWrite;
      w.offset = 0;
      w.length = 128 * 1024;
      w.data = rng.RandomBytes(128 * 1024);
      txn.ops.push_back(std::move(w));
      CO_ASSERT_OK(co_await os.Apply(txn, {}));
    }
    CO_ASSERT_EQ(os.stats().transactions, 60u);
  });
}

}  // namespace
}  // namespace vde::objstore
