// Object store tests: transactional writes, OMAP, RMW accounting,
// snapshots/clones, remove, and journal behavior.
#include <algorithm>

#include <gtest/gtest.h>

#include "../testutil.h"
#include "device/nvme.h"
#include "objstore/object_store.h"
#include "util/rng.h"

namespace vde::objstore {
namespace {

StoreConfig SmallStore() {
  StoreConfig c;
  c.journal_size = 8ull << 20;
  c.kv_region_size = 32ull << 20;
  c.max_object_size = (4ull << 20) + (1ull << 20);
  c.kv.wal_size = 1ull << 20;
  c.kv.memtable_limit = 1ull << 20;
  return c;
}

Transaction WriteTxn(const std::string& oid, uint64_t off, Bytes data) {
  Transaction txn;
  txn.oid = oid;
  OsdOp op;
  op.type = OsdOp::Type::kWrite;
  op.offset = off;
  op.length = data.size();
  op.data = std::move(data);
  txn.ops.push_back(std::move(op));
  return txn;
}

Transaction ReadTxn(const std::string& oid, uint64_t off, uint64_t len) {
  Transaction txn;
  txn.oid = oid;
  OsdOp op;
  op.type = OsdOp::Type::kRead;
  op.offset = off;
  op.length = len;
  txn.ops.push_back(std::move(op));
  return txn;
}

TEST(ObjectStore, WriteReadRoundtrip) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    CO_ASSERT_OK(store.status());
    auto& os = **store;
    Rng rng(1);
    const Bytes data = rng.RandomBytes(8192);
    CO_ASSERT_OK(co_await os.Apply(WriteTxn("obj1", 4096, data), {}));
    auto got = co_await os.ExecuteRead(ReadTxn("obj1", 4096, 8192), kHeadSnap);
    CO_ASSERT_OK(got.status());
    EXPECT_EQ(got->data, data);
    EXPECT_EQ(os.ObjectSize("obj1"), 4096u + 8192u);
  });
}

TEST(ObjectStore, UnalignedWriteReadBytes) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    Rng rng(2);
    // The unaligned IV layout writes at byte offsets like 4112.
    const Bytes data = rng.RandomBytes(4112);
    CO_ASSERT_OK(co_await os.Apply(WriteTxn("obj", 4112, data), {}));
    auto got = co_await os.ExecuteRead(ReadTxn("obj", 4112, 4112), kHeadSnap);
    CO_ASSERT_OK(got.status());
    EXPECT_EQ(got->data, data);
  });
}

TEST(ObjectStore, UnalignedWritesChargeRmw) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    Rng rng(3);
    CO_ASSERT_OK(co_await os.Apply(WriteTxn("a", 0, rng.RandomBytes(4096)), {}));
    co_await os.Drain();
    EXPECT_EQ(os.stats().rmw_sectors, 0u) << "aligned write needs no RMW";
    CO_ASSERT_OK(co_await os.Apply(WriteTxn("a", 100, rng.RandomBytes(5000)), {}));
    co_await os.Drain();
    EXPECT_EQ(os.stats().rmw_sectors, 2u) << "head and tail sectors RMW";
  });
}

TEST(ObjectStore, MultiOpTransactionAppliesAll) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    Rng rng(4);
    const Bytes data = rng.RandomBytes(4096);
    // Data write + IV write in ONE transaction (the paper's object-end path).
    Transaction txn;
    txn.oid = "combo";
    OsdOp w1;
    w1.type = OsdOp::Type::kWrite;
    w1.offset = 0;
    w1.length = 4096;
    w1.data = data;
    const Bytes iv = rng.RandomBytes(16);
    OsdOp w2;
    w2.type = OsdOp::Type::kWrite;
    w2.offset = 4ull << 20;  // metadata region at object end
    w2.length = 16;
    w2.data = iv;
    txn.ops.push_back(std::move(w1));
    txn.ops.push_back(std::move(w2));
    CO_ASSERT_OK(co_await os.Apply(txn, {}));

    auto d = co_await os.ExecuteRead(ReadTxn("combo", 0, 4096), kHeadSnap);
    auto i = co_await os.ExecuteRead(ReadTxn("combo", 4ull << 20, 16), kHeadSnap);
    CO_ASSERT_OK(d.status());
    CO_ASSERT_OK(i.status());
    EXPECT_EQ(d->data, data);
    EXPECT_EQ(i->data, iv);
  });
}

TEST(ObjectStore, OmapSetAndRangeGet) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    Transaction txn;
    txn.oid = "omapobj";
    OsdOp op;
    op.type = OsdOp::Type::kOmapSet;
    for (uint32_t i = 0; i < 32; ++i) {
      Bytes key(8);
      StoreU64Be(key.data(), i);
      op.omap_kvs.emplace_back(key, BytesOf("iv" + std::to_string(i)));
    }
    txn.ops.push_back(std::move(op));
    CO_ASSERT_OK(co_await os.Apply(txn, {}));

    Transaction get;
    get.oid = "omapobj";
    OsdOp g;
    g.type = OsdOp::Type::kOmapGetRange;
    Bytes lo(8), hi(8);
    StoreU64Be(lo.data(), 10);
    StoreU64Be(hi.data(), 20);
    g.omap_start = lo;
    g.omap_end = hi;
    get.ops.push_back(std::move(g));
    auto got = co_await os.ExecuteRead(get, kHeadSnap);
    CO_ASSERT_OK(got.status());
    CO_ASSERT_EQ(got->omap_values.size(), 10u);
    EXPECT_EQ(got->omap_values[0].second, BytesOf("iv10"));
    EXPECT_EQ(got->omap_values[9].second, BytesOf("iv19"));
  });
}

TEST(ObjectStore, DataAndOmapInOneTransaction) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    Rng rng(5);
    Transaction txn;
    txn.oid = "mix";
    OsdOp w;
    w.type = OsdOp::Type::kWrite;
    w.offset = 0;
    w.length = 4096;
    w.data = rng.RandomBytes(4096);
    OsdOp o;
    o.type = OsdOp::Type::kOmapSet;
    Bytes key(8);
    StoreU64Be(key.data(), 0);
    o.omap_kvs.emplace_back(key, rng.RandomBytes(16));
    txn.ops.push_back(std::move(w));
    txn.ops.push_back(std::move(o));
    CO_ASSERT_OK(co_await os.Apply(txn, {}));
    EXPECT_EQ(os.stats().transactions, 1u);
  });
}

TEST(ObjectStore, RemoveFreesObjectAndOmap) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    Rng rng(6);
    CO_ASSERT_OK(co_await os.Apply(WriteTxn("gone", 0, rng.RandomBytes(4096)), {}));
    Transaction omap;
    omap.oid = "gone";
    OsdOp o;
    o.type = OsdOp::Type::kOmapSet;
    o.omap_kvs.emplace_back(BytesOf("k"), BytesOf("v"));
    omap.ops.push_back(std::move(o));
    CO_ASSERT_OK(co_await os.Apply(omap, {}));
    EXPECT_TRUE(os.ObjectExists("gone"));

    Transaction rm;
    rm.oid = "gone";
    OsdOp r;
    r.type = OsdOp::Type::kRemove;
    rm.ops.push_back(std::move(r));
    CO_ASSERT_OK(co_await os.Apply(rm, {}));
    EXPECT_FALSE(os.ObjectExists("gone"));

    // OMAP rows must be gone too.
    Transaction get;
    get.oid = "gone";
    OsdOp g;
    g.type = OsdOp::Type::kOmapGetRange;
    get.ops.push_back(std::move(g));
    auto got = co_await os.ExecuteRead(get, kHeadSnap);
    CO_ASSERT_OK(got.status());
    EXPECT_TRUE(got->omap_values.empty());
  });
}

TEST(ObjectStore, SnapshotPreservesOldData) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    Rng rng(7);
    const Bytes v1 = rng.RandomBytes(4096);
    const Bytes v2 = rng.RandomBytes(4096);
    CO_ASSERT_OK(co_await os.Apply(WriteTxn("snapobj", 0, v1), {}));
    // Snapshot id 5 taken; subsequent write carries snapc.seq = 5.
    SnapContext snapc{5, {5}};
    CO_ASSERT_OK(co_await os.Apply(WriteTxn("snapobj", 0, v2), snapc));
    EXPECT_EQ(os.CloneCount("snapobj"), 1u);

    auto head = co_await os.ExecuteRead(ReadTxn("snapobj", 0, 4096), kHeadSnap);
    auto old = co_await os.ExecuteRead(ReadTxn("snapobj", 0, 4096), 5);
    CO_ASSERT_OK(head.status());
    CO_ASSERT_OK(old.status());
    EXPECT_EQ(head->data, v2);
    EXPECT_EQ(old->data, v1);
  });
}

TEST(ObjectStore, SnapshotClonesOmapRows) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    // Object with data + OMAP IV, then snapshot, then overwrite both.
    auto put = [&os](Bytes iv, const SnapContext& snapc) -> sim::Task<Status> {
      Transaction txn;
      txn.oid = "ivobj";
      OsdOp w;
      w.type = OsdOp::Type::kWrite;
      w.offset = 0;
      w.length = 4096;
      w.data = Bytes(4096, iv[0]);
      OsdOp o;
      o.type = OsdOp::Type::kOmapSet;
      Bytes key(8);
      StoreU64Be(key.data(), 0);
      o.omap_kvs.emplace_back(key, std::move(iv));
      txn.ops.push_back(std::move(w));
      txn.ops.push_back(std::move(o));
      co_return co_await os.Apply(txn, snapc);
    };
    CO_ASSERT_OK(co_await put(Bytes(16, 0xAA), {}));
    SnapContext snapc{9, {9}};
    CO_ASSERT_OK(co_await put(Bytes(16, 0xBB), snapc));

    Transaction get;
    get.oid = "ivobj";
    OsdOp g;
    g.type = OsdOp::Type::kOmapGetRange;
    get.ops.push_back(std::move(g));
    auto head = co_await os.ExecuteRead(get, kHeadSnap);
    auto old = co_await os.ExecuteRead(get, 9);
    CO_ASSERT_OK(head.status());
    CO_ASSERT_OK(old.status());
    CO_ASSERT_EQ(head->omap_values.size(), 1u);
    CO_ASSERT_EQ(old->omap_values.size(), 1u);
    EXPECT_EQ(head->omap_values[0].second, Bytes(16, 0xBB));
    EXPECT_EQ(old->omap_values[0].second, Bytes(16, 0xAA));
  });
}

TEST(ObjectStore, MultipleSnapshots) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    CO_ASSERT_OK(co_await os.Apply(WriteTxn("m", 0, Bytes(4096, 1)), {}));
    SnapContext snap10;
    snap10.seq = 10;
    snap10.snaps = {10};
    SnapContext snap20;
    snap20.seq = 20;
    snap20.snaps = {20, 10};
    CO_ASSERT_OK(co_await os.Apply(WriteTxn("m", 0, Bytes(4096, 2)), snap10));
    CO_ASSERT_OK(co_await os.Apply(WriteTxn("m", 0, Bytes(4096, 3)), snap20));
    auto s10 = co_await os.ExecuteRead(ReadTxn("m", 0, 1), 10);
    auto s20 = co_await os.ExecuteRead(ReadTxn("m", 0, 1), 20);
    auto head = co_await os.ExecuteRead(ReadTxn("m", 0, 1), kHeadSnap);
    CO_ASSERT_OK(s10.status());
    CO_ASSERT_OK(s20.status());
    CO_ASSERT_OK(head.status());
    EXPECT_EQ(s10->data[0], 1);
    EXPECT_EQ(s20->data[0], 2);
    EXPECT_EQ(head->data[0], 3);
  });
}

TEST(ObjectStore, SnapshotWithoutLaterWriteReadsHead) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    CO_ASSERT_OK(co_await os.Apply(WriteTxn("q", 0, Bytes(4096, 7)), {}));
    // Snapshot 3 exists but object never written after -> head serves it.
    auto got = co_await os.ExecuteRead(ReadTxn("q", 0, 1), 3);
    CO_ASSERT_OK(got.status());
    EXPECT_EQ(got->data[0], 7);
  });
}

TEST(ObjectStore, JournalGrowsWithPayload) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    Rng rng(8);
    CO_ASSERT_OK(co_await os.Apply(WriteTxn("j", 0, rng.RandomBytes(64 * 1024)), {}));
    EXPECT_GE(os.stats().journal_bytes, 64u * 1024);
  });
}

TEST(ObjectStore, JournalCheckpointWhenFull) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    StoreConfig cfg = SmallStore();
    cfg.journal_size = 1ull << 20;  // tiny journal: forces checkpoints
    auto store = co_await ObjectStore::Open(nvme, cfg);
    auto& os = **store;
    Rng rng(9);
    for (int i = 0; i < 40; ++i) {
      CO_ASSERT_OK(
          co_await os.Apply(WriteTxn("ck", 0, rng.RandomBytes(128 * 1024)), {}));
    }
    // All 40 x 128K journaled through a 1M journal => checkpoints happened
    // and nothing failed.
    EXPECT_EQ(os.stats().transactions, 40u);
  });
}

TEST(ObjectStore, ReadOfMissingObjectFails) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    auto got = co_await os.ExecuteRead(ReadTxn("nope", 0, 4096), kHeadSnap);
    EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
  });
}

TEST(ObjectStore, WriteBeyondMaxObjectRejected) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    const auto status =
        co_await os.Apply(WriteTxn("big", 5ull << 20, Bytes(4096, 0)), {});
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  });
}

// --- Tracked discard (kTrim) ---

Transaction TrimTxn(const std::string& oid, uint64_t off, uint64_t len) {
  Transaction txn;
  txn.oid = oid;
  OsdOp op;
  op.type = OsdOp::Type::kTrim;
  op.offset = off;
  op.length = len;
  txn.ops.push_back(std::move(op));
  return txn;
}

TEST(ObjectStoreTrim, TrimFreesCapacityAndReadsZeros) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    Rng rng(2);
    CO_ASSERT_OK(co_await os.Apply(
        WriteTxn("t", 0, rng.RandomBytes(64 * 4096)), {}));
    co_await os.Drain();
    const uint64_t free_before = os.space().free_bytes;

    CO_ASSERT_OK(co_await os.Apply(TrimTxn("t", 16 * 4096, 32 * 4096), {}));
    // TRIM actually grows allocator capacity, by exactly the fully
    // covered sectors, and the trimmed map tracks the logical range.
    EXPECT_EQ(os.space().free_bytes, free_before + 32 * 4096);
    EXPECT_EQ(os.space().punched_bytes, 32u * 4096);
    EXPECT_EQ(os.TrimmedBytes("t"), 32u * 4096);
    EXPECT_EQ(os.stats().trim_ops, 1u);
    EXPECT_EQ(os.stats().bytes_trimmed, 32u * 4096);

    auto got = co_await os.ExecuteRead(ReadTxn("t", 16 * 4096, 32 * 4096),
                                       kHeadSnap);
    CO_ASSERT_OK(got.status());
    EXPECT_TRUE(std::all_of(got->data.begin(), got->data.end(),
                            [](uint8_t b) { return b == 0; }));
  });
}

TEST(ObjectStoreTrim, TrimmedReadSkipsDevice) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    Rng rng(3);
    CO_ASSERT_OK(co_await os.Apply(
        WriteTxn("t", 0, rng.RandomBytes(16 * 4096)), {}));
    CO_ASSERT_OK(co_await os.Apply(TrimTxn("t", 0, 8 * 4096), {}));
    co_await os.Drain();

    const uint64_t reads_before = nvme->stats().read_ops;
    auto got = co_await os.ExecuteRead(ReadTxn("t", 4096, 4 * 4096),
                                       kHeadSnap);
    CO_ASSERT_OK(got.status());
    // Fully inside the trimmed map: served as zeros with zero device IO.
    EXPECT_EQ(nvme->stats().read_ops, reads_before);
    EXPECT_EQ(os.stats().trimmed_reads, 1u);
    // A read straddling the trimmed boundary still goes to the device.
    auto edge = co_await os.ExecuteRead(ReadTxn("t", 4 * 4096, 8 * 4096),
                                        kHeadSnap);
    CO_ASSERT_OK(edge.status());
    EXPECT_GT(nvme->stats().read_ops, reads_before);
  });
}

TEST(ObjectStoreTrim, RewriteRestoresBackingAndClearsMap) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    Rng rng(4);
    CO_ASSERT_OK(co_await os.Apply(
        WriteTxn("t", 0, rng.RandomBytes(16 * 4096)), {}));
    CO_ASSERT_OK(co_await os.Apply(TrimTxn("t", 0, 16 * 4096), {}));
    EXPECT_EQ(os.space().punched_bytes, 16u * 4096);

    const Bytes fresh = rng.RandomBytes(4 * 4096);
    CO_ASSERT_OK(co_await os.Apply(WriteTxn("t", 4096, fresh), {}));
    // The rewritten sectors are re-backed; the rest stay punched.
    EXPECT_EQ(os.space().punched_bytes, 12u * 4096);
    EXPECT_EQ(os.stats().bytes_restored, 4u * 4096);
    EXPECT_EQ(os.TrimmedBytes("t"), 12u * 4096);

    auto got = co_await os.ExecuteRead(ReadTxn("t", 4096, 4 * 4096),
                                       kHeadSnap);
    CO_ASSERT_OK(got.status());
    EXPECT_EQ(got->data, fresh);
    // Bytes around the rewrite still read zeros.
    auto before = co_await os.ExecuteRead(ReadTxn("t", 0, 4096), kHeadSnap);
    CO_ASSERT_OK(before.status());
    EXPECT_TRUE(std::all_of(before->data.begin(), before->data.end(),
                            [](uint8_t b) { return b == 0; }));
  });
}

TEST(ObjectStoreTrim, CloneFreezesTrimmedStateAndRemoveReclaimsAll) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    Rng rng(5);
    const uint64_t free_initial = os.space().free_bytes;
    const Bytes data = rng.RandomBytes(8 * 4096);
    CO_ASSERT_OK(co_await os.Apply(WriteTxn("t", 0, data), {}));
    CO_ASSERT_OK(co_await os.Apply(TrimTxn("t", 0, 4 * 4096), {}));

    // Snapshot 1 freezes the half-trimmed state; then rewrite the head.
    SnapContext snapc;
    snapc.seq = 1;
    snapc.snaps = {1};
    const Bytes head = rng.RandomBytes(8 * 4096);
    CO_ASSERT_OK(co_await os.Apply(WriteTxn("t", 0, head), snapc));

    // The clone reads zeros where the head was trimmed pre-snapshot and
    // the preserved bytes elsewhere; the head reads the rewrite.
    auto snap = co_await os.ExecuteRead(ReadTxn("t", 0, 8 * 4096), 1);
    CO_ASSERT_OK(snap.status());
    EXPECT_TRUE(std::all_of(snap->data.begin(),
                            snap->data.begin() + 4 * 4096,
                            [](uint8_t b) { return b == 0; }));
    EXPECT_TRUE(std::equal(snap->data.begin() + 4 * 4096, snap->data.end(),
                           data.begin() + 4 * 4096));
    auto now = co_await os.ExecuteRead(ReadTxn("t", 0, 8 * 4096), kHeadSnap);
    CO_ASSERT_OK(now.status());
    EXPECT_EQ(now->data, head);

    // Remove reclaims the head extent in one piece even though parts of
    // it had been punched (clone extents stay allocated).
    Transaction rm;
    rm.oid = "t";
    OsdOp op;
    op.type = OsdOp::Type::kRemove;
    rm.ops.push_back(std::move(op));
    CO_ASSERT_OK(co_await os.Apply(rm, snapc));
    EXPECT_EQ(os.space().punched_bytes, 0u);
    EXPECT_LT(os.space().free_bytes, free_initial);  // clone still held
    co_await os.Drain();
  });
}

TEST(ObjectStoreTrim, DiscardOnlyTxnDoesNotMaterializeObject) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    CO_ASSERT_OK(co_await os.Apply(TrimTxn("ghost", 0, 64 * 4096), {}));
    EXPECT_FALSE(os.ObjectExists("ghost"));
    EXPECT_EQ(os.stats().objects_created, 0u);
  });
}

TEST(ObjectStoreTrim, TamperedDataBypassesTrimBookkeeping) {
  testutil::RunSim([]() -> sim::Task<void> {
    auto nvme = std::make_shared<dev::NvmeDevice>();
    auto store = co_await ObjectStore::Open(nvme, SmallStore());
    auto& os = **store;
    Rng rng(6);
    CO_ASSERT_OK(co_await os.Apply(
        WriteTxn("t", 0, rng.RandomBytes(4 * 4096)), {}));
    // The attacker zeroes live bytes: no trimmed-map entry appears, no
    // capacity is released — the store just serves the zeroed bytes.
    CO_ASSERT_OK(os.TamperObjectData("t", 0, Bytes(4096, 0)));
    EXPECT_EQ(os.TrimmedBytes("t"), 0u);
    EXPECT_EQ(os.space().punched_bytes, 0u);
    auto got = co_await os.ExecuteRead(ReadTxn("t", 0, 4096), kHeadSnap);
    CO_ASSERT_OK(got.status());
    EXPECT_TRUE(std::all_of(got->data.begin(), got->data.end(),
                            [](uint8_t b) { return b == 0; }));
  });
}

}  // namespace
}  // namespace vde::objstore
