// Tests of the per-sector-metadata encryption engine: geometry of the three
// layouts (Fig. 2), roundtrips, security properties (random IV hides
// overwrite locality; deterministic baseline leaks it), integrity variants,
// replay defense.
#include "core/format.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vde::core {
namespace {

using objstore::OsdOp;
using objstore::ReadResult;
using objstore::Transaction;

constexpr uint64_t kObjectSize = 4ull << 20;

Bytes TestKey() {
  Rng rng(0xCAFE);
  return rng.RandomBytes(64);
}

ObjectExtent MakeExtent(uint64_t first_block, size_t count,
                        uint64_t image_block) {
  ObjectExtent ext;
  ext.oid = "rbd_data.test.0000000000000000";
  ext.object_no = 0;
  ext.first_block = first_block;
  ext.block_count = count;
  ext.image_block = image_block;
  return ext;
}

// Applies write ops to an in-memory object model + omap, then serves reads —
// a micro object store for format-level tests.
struct FakeObject {
  Bytes data = Bytes(kObjectSize + (1 << 20), 0);
  std::map<Bytes, Bytes> omap;

  void ApplyWrite(const Transaction& txn) {
    for (const auto& op : txn.ops) {
      if (op.type == OsdOp::Type::kWrite) {
        std::copy(op.data.begin(), op.data.end(),
                  data.begin() + static_cast<long>(op.offset));
      } else if (op.type == OsdOp::Type::kOmapSet) {
        for (const auto& [k, v] : op.omap_kvs) omap[k] = v;
      }
    }
  }

  ReadResult ServeRead(const Transaction& txn) const {
    ReadResult result;
    for (const auto& op : txn.ops) {
      if (op.type == OsdOp::Type::kRead) {
        result.data.insert(result.data.end(),
                           data.begin() + static_cast<long>(op.offset),
                           data.begin() +
                               static_cast<long>(op.offset + op.length));
      } else if (op.type == OsdOp::Type::kOmapGetRange) {
        for (auto it = omap.lower_bound(op.omap_start);
             it != omap.end() && (op.omap_end.empty() || it->first < op.omap_end);
             ++it) {
          result.omap_values.emplace_back(it->first, it->second);
        }
      }
    }
    return result;
  }
};

EncryptionSpec RandomIvSpec(IvLayout layout,
                            Integrity integrity = Integrity::kNone,
                            CipherMode mode = CipherMode::kXtsRandom) {
  EncryptionSpec spec;
  spec.mode = mode;
  spec.layout = layout;
  spec.integrity = integrity;
  spec.iv_seed = 42;
  return spec;
}

// --- Parameterized roundtrip across every spec the paper discusses ---

class FormatRoundtrip : public ::testing::TestWithParam<EncryptionSpec> {};

TEST_P(FormatRoundtrip, WriteReadRoundtrip) {
  const auto spec = GetParam();
  auto format = MakeFormat(spec, TestKey(), kObjectSize);
  ASSERT_NE(format, nullptr);
  Rng rng(1);
  FakeObject obj;

  for (const size_t nblocks : {size_t{1}, size_t{3}, size_t{8}}) {
    const uint64_t first = rng.NextBelow(64);
    const Bytes plain = rng.RandomBytes(nblocks * kBlockSize);
    const auto ext = MakeExtent(first, nblocks, 1000 + first);

    Transaction wr;
    ASSERT_TRUE(format->MakeWrite(ext, plain, wr).ok());
    obj.ApplyWrite(wr);

    Transaction rd;
    format->MakeRead(ext, rd);
    const ReadResult result = obj.ServeRead(rd);
    Bytes out(plain.size());
    ASSERT_TRUE(format->FinishRead(ext, result, out).ok());
    ASSERT_EQ(out, plain) << spec.Name() << " nblocks=" << nblocks;
    if (spec.mode != CipherMode::kNone) {
      // Ciphertext must differ from plaintext on the wire.
      ASSERT_NE(wr.ops[0].data, plain);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, FormatRoundtrip,
    ::testing::Values(
        EncryptionSpec{},  // luks2 baseline (xts-lba)
        EncryptionSpec{CipherMode::kNone, IvLayout::kNone},
        EncryptionSpec{CipherMode::kXtsEssiv, IvLayout::kNone},
        EncryptionSpec{CipherMode::kWideLba, IvLayout::kNone},
        RandomIvSpec(IvLayout::kUnaligned),
        RandomIvSpec(IvLayout::kObjectEnd),
        RandomIvSpec(IvLayout::kOmap),
        RandomIvSpec(IvLayout::kUnaligned, Integrity::kHmac),
        RandomIvSpec(IvLayout::kObjectEnd, Integrity::kHmac),
        RandomIvSpec(IvLayout::kOmap, Integrity::kHmac),
        RandomIvSpec(IvLayout::kObjectEnd, Integrity::kNone,
                     CipherMode::kGcmRandom),
        RandomIvSpec(IvLayout::kOmap, Integrity::kNone,
                     CipherMode::kGcmRandom)),
    [](const auto& info) {
      std::string name = info.param.Name();
      for (char& c : name) {
        if (c == '/' || c == '-' || c == '+') c = '_';
      }
      return name;
    });

// --- Geometry (Fig. 2) ---

TEST(FormatGeometry, UnalignedInterleavesAtStride) {
  auto format = MakeFormat(RandomIvSpec(IvLayout::kUnaligned), TestKey(),
                           kObjectSize);
  Rng rng(2);
  Transaction txn;
  const auto ext = MakeExtent(5, 2, 5);
  ASSERT_TRUE(format->MakeWrite(ext, rng.RandomBytes(2 * kBlockSize), txn).ok());
  ASSERT_EQ(txn.ops.size(), 1u);
  EXPECT_EQ(txn.ops[0].offset, 5 * (kBlockSize + 16));
  EXPECT_EQ(txn.ops[0].data.size(), 2 * (kBlockSize + 16));
  // Every access is unaligned to device sectors (the paper's complaint).
  EXPECT_NE(txn.ops[0].offset % 4096, 0u);
}

TEST(FormatGeometry, ObjectEndPutsIvsAfterObject) {
  auto format = MakeFormat(RandomIvSpec(IvLayout::kObjectEnd), TestKey(),
                           kObjectSize);
  Rng rng(3);
  Transaction txn;
  const auto ext = MakeExtent(7, 3, 7);
  ASSERT_TRUE(format->MakeWrite(ext, rng.RandomBytes(3 * kBlockSize), txn).ok());
  ASSERT_EQ(txn.ops.size(), 2u);
  EXPECT_EQ(txn.ops[0].offset, 7u * kBlockSize);       // data unchanged
  EXPECT_EQ(txn.ops[1].offset, kObjectSize + 7 * 16);  // IVs at object end
  EXPECT_EQ(txn.ops[1].data.size(), 3u * 16);
}

TEST(FormatGeometry, OmapKeysAreBlockIndices) {
  auto format =
      MakeFormat(RandomIvSpec(IvLayout::kOmap), TestKey(), kObjectSize);
  Rng rng(4);
  Transaction txn;
  const auto ext = MakeExtent(9, 2, 9);
  ASSERT_TRUE(format->MakeWrite(ext, rng.RandomBytes(2 * kBlockSize), txn).ok());
  ASSERT_EQ(txn.ops.size(), 2u);
  ASSERT_EQ(txn.ops[1].omap_kvs.size(), 2u);
  Bytes key9(8), key10(8);
  StoreU64Be(key9.data(), 9);
  StoreU64Be(key10.data(), 10);
  EXPECT_EQ(txn.ops[1].omap_kvs[0].first, key9);
  EXPECT_EQ(txn.ops[1].omap_kvs[1].first, key10);
  EXPECT_EQ(txn.ops[1].omap_kvs[0].second.size(), 16u);
}

TEST(FormatGeometry, MetaPerBlockSizes) {
  EXPECT_EQ(EncryptionSpec{}.MetaPerBlock(), 0u);
  EXPECT_EQ(RandomIvSpec(IvLayout::kObjectEnd).MetaPerBlock(), 16u);
  EXPECT_EQ(RandomIvSpec(IvLayout::kObjectEnd, Integrity::kHmac).MetaPerBlock(),
            48u);
  EXPECT_EQ(RandomIvSpec(IvLayout::kObjectEnd, Integrity::kNone,
                         CipherMode::kGcmRandom)
                .MetaPerBlock(),
            28u);
}

// --- Security properties (the paper's motivation, §2.1/§2.2) ---

TEST(FormatSecurity, Luks2OverwriteLeaksChangedSubBlocks) {
  // Deterministic LBA tweak: an overwrite changing one 16-byte sub-block
  // yields identical ciphertext everywhere else — visible to the storage.
  EncryptionSpec spec;  // luks2 baseline
  auto format = MakeFormat(spec, TestKey(), kObjectSize);
  Rng rng(5);
  Bytes plain = rng.RandomBytes(kBlockSize);
  const auto ext = MakeExtent(0, 1, 77);

  Transaction w1, w2;
  ASSERT_TRUE(format->MakeWrite(ext, plain, w1).ok());
  plain[100] ^= 0x5A;  // sub-block 6
  ASSERT_TRUE(format->MakeWrite(ext, plain, w2).ok());

  int changed_subblocks = 0;
  for (size_t sb = 0; sb < kBlockSize / 16; ++sb) {
    if (!std::equal(w1.ops[0].data.begin() + static_cast<long>(sb * 16),
                    w1.ops[0].data.begin() + static_cast<long>(sb * 16 + 16),
                    w2.ops[0].data.begin() + static_cast<long>(sb * 16))) {
      changed_subblocks++;
    }
  }
  EXPECT_EQ(changed_subblocks, 1) << "XTS leaks exactly the changed sub-block";
}

TEST(FormatSecurity, RandomIvOverwriteHidesLocality) {
  // The paper's fix: a fresh IV per overwrite re-randomizes everything.
  auto format = MakeFormat(RandomIvSpec(IvLayout::kObjectEnd), TestKey(),
                           kObjectSize);
  Rng rng(6);
  Bytes plain = rng.RandomBytes(kBlockSize);
  const auto ext = MakeExtent(0, 1, 77);

  Transaction w1, w2;
  ASSERT_TRUE(format->MakeWrite(ext, plain, w1).ok());
  plain[100] ^= 0x5A;
  ASSERT_TRUE(format->MakeWrite(ext, plain, w2).ok());

  int identical_subblocks = 0;
  for (size_t sb = 0; sb < kBlockSize / 16; ++sb) {
    if (std::equal(w1.ops[0].data.begin() + static_cast<long>(sb * 16),
                   w1.ops[0].data.begin() + static_cast<long>(sb * 16 + 16),
                   w2.ops[0].data.begin() + static_cast<long>(sb * 16))) {
      identical_subblocks++;
    }
  }
  EXPECT_EQ(identical_subblocks, 0);
}

TEST(FormatSecurity, RandomIvIdenticalOverwriteAlsoHidden) {
  // Even rewriting IDENTICAL data is indistinguishable (semantic security
  // under overwrite — impossible for any deterministic scheme).
  auto format = MakeFormat(RandomIvSpec(IvLayout::kObjectEnd), TestKey(),
                           kObjectSize);
  Rng rng(7);
  const Bytes plain = rng.RandomBytes(kBlockSize);
  const auto ext = MakeExtent(0, 1, 5);
  Transaction w1, w2;
  ASSERT_TRUE(format->MakeWrite(ext, plain, w1).ok());
  ASSERT_TRUE(format->MakeWrite(ext, plain, w2).ok());
  EXPECT_NE(w1.ops[0].data, w2.ops[0].data);
}

TEST(FormatSecurity, SameDataDifferentLbaDiffers) {
  EncryptionSpec spec;  // baseline
  auto format = MakeFormat(spec, TestKey(), kObjectSize);
  Rng rng(8);
  const Bytes plain = rng.RandomBytes(kBlockSize);
  Transaction w1, w2;
  ASSERT_TRUE(format->MakeWrite(MakeExtent(0, 1, 100), plain, w1).ok());
  ASSERT_TRUE(format->MakeWrite(MakeExtent(0, 1, 200), plain, w2).ok());
  EXPECT_NE(w1.ops[0].data, w2.ops[0].data);
}

TEST(FormatSecurity, ReplayAtDifferentLbaDecryptsGarbage) {
  // The IV binds the address: moving (ciphertext, IV) to another LBA must
  // not reveal the plaintext (paper §2.2 replay defense).
  auto format = MakeFormat(RandomIvSpec(IvLayout::kObjectEnd), TestKey(),
                           kObjectSize);
  Rng rng(9);
  FakeObject obj;
  const Bytes plain = rng.RandomBytes(kBlockSize);
  const auto ext_a = MakeExtent(0, 1, 10);
  Transaction wr;
  ASSERT_TRUE(format->MakeWrite(ext_a, plain, wr).ok());
  obj.ApplyWrite(wr);

  Transaction rd;
  format->MakeRead(ext_a, rd);
  const ReadResult result = obj.ServeRead(rd);

  // Same bytes presented as if they were block 11 (image_block differs).
  auto ext_b = MakeExtent(0, 1, 11);
  Bytes out(kBlockSize);
  ASSERT_TRUE(format->FinishRead(ext_b, result, out).ok());
  EXPECT_NE(out, plain);
}

TEST(FormatSecurity, HmacDetectsCiphertextTampering) {
  auto format = MakeFormat(RandomIvSpec(IvLayout::kObjectEnd, Integrity::kHmac),
                           TestKey(), kObjectSize);
  Rng rng(10);
  FakeObject obj;
  const Bytes plain = rng.RandomBytes(kBlockSize);
  const auto ext = MakeExtent(0, 1, 3);
  Transaction wr;
  ASSERT_TRUE(format->MakeWrite(ext, plain, wr).ok());
  obj.ApplyWrite(wr);
  obj.data[2000] ^= 0x01;  // flip a ciphertext bit

  Transaction rd;
  format->MakeRead(ext, rd);
  Bytes out(kBlockSize);
  EXPECT_EQ(format->FinishRead(ext, obj.ServeRead(rd), out).code(),
            StatusCode::kCorruption);
}

TEST(FormatSecurity, HmacDetectsMixAndMatchForgery) {
  // The §2.1 splice attack MUST be caught once integrity is on.
  auto format = MakeFormat(RandomIvSpec(IvLayout::kObjectEnd, Integrity::kHmac),
                           TestKey(), kObjectSize);
  Rng rng(11);
  const auto ext = MakeExtent(0, 1, 3);
  Transaction w1, w2;
  ASSERT_TRUE(format->MakeWrite(ext, rng.RandomBytes(kBlockSize), w1).ok());
  ASSERT_TRUE(format->MakeWrite(ext, rng.RandomBytes(kBlockSize), w2).ok());
  FakeObject obj;
  obj.ApplyWrite(w1);
  // Forge: splice second half of v2's ciphertext into v1's (keep v1 IV+tag).
  std::copy(w2.ops[0].data.begin() + 2048, w2.ops[0].data.end(),
            obj.data.begin() + 2048);
  Transaction rd;
  format->MakeRead(ext, rd);
  Bytes out(kBlockSize);
  EXPECT_EQ(format->FinishRead(ext, obj.ServeRead(rd), out).code(),
            StatusCode::kCorruption);
}

TEST(FormatSecurity, GcmDetectsTampering) {
  auto format = MakeFormat(RandomIvSpec(IvLayout::kObjectEnd, Integrity::kNone,
                                        CipherMode::kGcmRandom),
                           TestKey(), kObjectSize);
  Rng rng(12);
  FakeObject obj;
  const auto ext = MakeExtent(0, 1, 4);
  Transaction wr;
  ASSERT_TRUE(format->MakeWrite(ext, rng.RandomBytes(kBlockSize), wr).ok());
  obj.ApplyWrite(wr);
  obj.data[123] ^= 0x80;
  Transaction rd;
  format->MakeRead(ext, rd);
  Bytes out(kBlockSize);
  EXPECT_EQ(format->FinishRead(ext, obj.ServeRead(rd), out).code(),
            StatusCode::kCorruption);
}

TEST(FormatSecurity, IvStreamNeverRepeats) {
  auto format = MakeFormat(RandomIvSpec(IvLayout::kObjectEnd), TestKey(),
                           kObjectSize);
  Rng rng(13);
  const Bytes plain = rng.RandomBytes(kBlockSize);
  const auto ext = MakeExtent(0, 1, 0);
  std::set<Bytes> ivs;
  for (int i = 0; i < 500; ++i) {
    Transaction wr;
    ASSERT_TRUE(format->MakeWrite(ext, plain, wr).ok());
    ivs.insert(wr.ops[1].data);  // the 16-byte IV
  }
  EXPECT_EQ(ivs.size(), 500u);
}

TEST(FormatSecurity, WideBlockDiffusesButDeterministic) {
  EncryptionSpec spec;
  spec.mode = CipherMode::kWideLba;
  auto format = MakeFormat(spec, TestKey(), kObjectSize);
  Rng rng(14);
  Bytes plain = rng.RandomBytes(kBlockSize);
  const auto ext = MakeExtent(0, 1, 9);
  Transaction w1, w2, w3;
  ASSERT_TRUE(format->MakeWrite(ext, plain, w1).ok());
  ASSERT_TRUE(format->MakeWrite(ext, plain, w2).ok());
  EXPECT_EQ(w1.ops[0].data, w2.ops[0].data) << "wide-block is deterministic";
  plain[0] ^= 1;
  ASSERT_TRUE(format->MakeWrite(ext, plain, w3).ok());
  int identical = 0;
  for (size_t sb = 0; sb < kBlockSize / 16; ++sb) {
    if (std::equal(w1.ops[0].data.begin() + static_cast<long>(sb * 16),
                   w1.ops[0].data.begin() + static_cast<long>(sb * 16 + 16),
                   w3.ops[0].data.begin() + static_cast<long>(sb * 16))) {
      identical++;
    }
  }
  EXPECT_EQ(identical, 0) << "one flipped bit re-randomizes the whole sector";
}

TEST(FormatSecurity, OmapMissingIvRejected) {
  auto format =
      MakeFormat(RandomIvSpec(IvLayout::kOmap), TestKey(), kObjectSize);
  Rng rng(15);
  FakeObject obj;
  const auto ext = MakeExtent(0, 2, 0);
  Transaction wr;
  ASSERT_TRUE(format->MakeWrite(ext, rng.RandomBytes(2 * kBlockSize), wr).ok());
  obj.ApplyWrite(wr);
  obj.omap.erase(obj.omap.begin());  // lose one IV
  Transaction rd;
  format->MakeRead(ext, rd);
  Bytes out(2 * kBlockSize);
  EXPECT_EQ(format->FinishRead(ext, obj.ServeRead(rd), out).code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace vde::core
