// Tests of the compression-before-encryption stage: the in-tree LZ codec
// (round-trips, honest incompressibility, bounds-checked rejection of
// malformed streams) and the format-level record — 3-byte [codec][len]
// header, tail trims that make short ciphertexts sparse, verbatim
// fallback, and the geometry/authentication interactions.
#include "core/format.h"

#include <gtest/gtest.h>

#include <map>

#include "util/lz.h"
#include "util/rng.h"

namespace vde::core {
namespace {

using objstore::OsdOp;
using objstore::ReadResult;
using objstore::Transaction;

constexpr uint64_t kObjectSize = 4ull << 20;

Bytes TestKey() {
  Rng rng(0xCAFE);
  return rng.RandomBytes(64);
}

ObjectExtent MakeExtent(uint64_t first_block, size_t count,
                        uint64_t image_block) {
  ObjectExtent ext;
  ext.oid = "rbd_data.test.0000000000000000";
  ext.object_no = 0;
  ext.first_block = first_block;
  ext.block_count = count;
  ext.image_block = image_block;
  return ext;
}

// Block with a pct%-long single-byte run up front and seed-random tail —
// the same shape the fio driver's compressibility knob produces.
Bytes CompressibleBlock(Rng& rng, uint32_t pct) {
  Bytes block(kBlockSize);
  const size_t run = block.size() * pct / 100;
  std::fill(block.begin(), block.begin() + static_cast<long>(run), 0xA7);
  const Bytes tail = rng.RandomBytes(block.size() - run);
  std::copy(tail.begin(), tail.end(), block.begin() + static_cast<long>(run));
  return block;
}

// In-memory object + omap model (same micro store as format_test). Trim
// ops are accepted and ignored: the data buffer's zero tail already equals
// what a punched range reads back as.
struct FakeObject {
  Bytes data = Bytes(kObjectSize + (1 << 20), 0);
  std::map<Bytes, Bytes> omap;

  void ApplyWrite(const Transaction& txn) {
    for (const auto& op : txn.ops) {
      if (op.type == OsdOp::Type::kWrite) {
        std::copy(op.data.begin(), op.data.end(),
                  data.begin() + static_cast<long>(op.offset));
      } else if (op.type == OsdOp::Type::kOmapSet) {
        for (const auto& [k, v] : op.omap_kvs) omap[k] = v;
      }
    }
  }

  ReadResult ServeRead(const Transaction& txn) const {
    ReadResult result;
    for (const auto& op : txn.ops) {
      if (op.type == OsdOp::Type::kRead) {
        result.data.insert(result.data.end(),
                           data.begin() + static_cast<long>(op.offset),
                           data.begin() +
                               static_cast<long>(op.offset + op.length));
      } else if (op.type == OsdOp::Type::kOmapGetRange) {
        for (auto it = omap.lower_bound(op.omap_start);
             it != omap.end() &&
             (op.omap_end.empty() || it->first < op.omap_end);
             ++it) {
          result.omap_values.emplace_back(it->first, it->second);
        }
      }
    }
    return result;
  }
};

EncryptionSpec CompressedSpec(IvLayout layout,
                              Integrity integrity = Integrity::kNone,
                              CipherMode mode = CipherMode::kXtsRandom) {
  EncryptionSpec spec;
  spec.mode = mode;
  spec.layout = layout;
  spec.integrity = integrity;
  spec.iv_seed = 42;
  spec.compression.codec = Compression::kLz;
  return spec;
}

size_t CountTrims(const Transaction& txn) {
  size_t n = 0;
  for (const auto& op : txn.ops) {
    if (op.type == OsdOp::Type::kTrim) ++n;
  }
  return n;
}

// --- The codec itself ---

TEST(LzCodec, RoundTripsCompressiblePatterns) {
  Rng rng(1);
  const Bytes zeros(kBlockSize, 0);
  const Bytes run(kBlockSize, 0x5A);
  Bytes text;
  while (text.size() < kBlockSize) {
    const char* phrase = "rethinking block storage encryption ";
    text.insert(text.end(), phrase, phrase + 36);
  }
  text.resize(kBlockSize);

  const Bytes* inputs[] = {&zeros, &run, &text};
  for (const Bytes* in : inputs) {
    Bytes packed(kBlockSize);
    const size_t clen = LzCompress(*in, packed);
    ASSERT_GT(clen, 0u);
    ASSERT_LT(clen, in->size() / 2);  // these patterns compress hard
    Bytes out(in->size());
    ASSERT_TRUE(LzDecompress(ByteSpan(packed.data(), clen), out).ok());
    EXPECT_EQ(out, *in);
  }
}

TEST(LzCodec, RoundTripsMixedBlocksAtVariousSizes) {
  Rng rng(2);
  for (const size_t size : {size_t{64}, size_t{512}, size_t{4096},
                            size_t{65536}}) {
    Bytes in(size, 0x33);
    // Salt the run with random bytes so matches are short and scattered.
    for (size_t i = 0; i < size; i += 7) in[i] = rng.RandomBytes(1)[0];
    Bytes packed(size);
    const size_t clen = LzCompress(in, packed);
    ASSERT_GT(clen, 0u) << "size=" << size;
    Bytes out(size);
    ASSERT_TRUE(LzDecompress(ByteSpan(packed.data(), clen), out).ok());
    EXPECT_EQ(out, in) << "size=" << size;
  }
}

TEST(LzCodec, ReportsIncompressibleHonestly) {
  Rng rng(3);
  const Bytes in = rng.RandomBytes(kBlockSize);
  // Random data cannot fit under any gain threshold; the codec must say so
  // rather than overflow or pad.
  Bytes packed(kBlockSize - 1);
  EXPECT_EQ(LzCompress(in, packed), 0u);
  Bytes tight(kBlockSize / 2);
  EXPECT_EQ(LzCompress(in, tight), 0u);
}

TEST(LzCodec, RejectsCorruptedStreams) {
  const Bytes in(kBlockSize, 0x5A);
  Bytes packed(kBlockSize);
  const size_t clen = LzCompress(in, packed);
  ASSERT_GT(clen, 2u);
  Bytes out(kBlockSize);

  // Truncation: the stream ends mid-record or produces too few bytes.
  for (const size_t cut : {size_t{1}, clen / 2, clen - 1}) {
    EXPECT_FALSE(LzDecompress(ByteSpan(packed.data(), cut), out).ok())
        << "cut=" << cut;
  }
  // Empty stream cannot produce a 4 KiB block.
  EXPECT_FALSE(LzDecompress(ByteSpan(packed.data(), 0), out).ok());

  // Every single-byte corruption must either fail closed or still write
  // exactly out.size() bytes — never read or write out of bounds. (ASan in
  // the Debug CI job backs the "never" part.)
  for (size_t i = 0; i < clen; ++i) {
    Bytes bad(packed.begin(), packed.begin() + static_cast<long>(clen));
    bad[i] ^= 0xFF;
    (void)LzDecompress(bad, out);
  }

  // A zero match offset (copy from "0 bytes back") is always malformed.
  Bytes zeroes(16, 0);
  zeroes[0] = 0x41;  // 4 literals, match len 4+1
  EXPECT_FALSE(LzDecompress(zeroes, out).ok());
}

TEST(LzCodec, RejectsWrongOutputLength) {
  const Bytes in(kBlockSize, 0x77);
  Bytes packed(kBlockSize);
  const size_t clen = LzCompress(in, packed);
  ASSERT_GT(clen, 0u);
  // Decompress writes exactly out.size() bytes: a mismatched claim in the
  // metadata header surfaces as corruption, not silent truncation.
  Bytes small(kBlockSize / 2);
  EXPECT_FALSE(LzDecompress(ByteSpan(packed.data(), clen), small).ok());
  Bytes big(kBlockSize * 2);
  EXPECT_FALSE(LzDecompress(ByteSpan(packed.data(), clen), big).ok());
}

// --- Format-level: the per-block record across geometries ---

class CompressedFormat : public ::testing::TestWithParam<EncryptionSpec> {};

TEST_P(CompressedFormat, CompressedRoundtripWithTailTrims) {
  const auto spec = GetParam();
  auto format = MakeFormat(spec, TestKey(), kObjectSize);
  ASSERT_NE(format, nullptr);
  Rng rng(10);
  FakeObject obj;

  for (const size_t nblocks : {size_t{1}, size_t{3}, size_t{8}}) {
    const uint64_t first = rng.NextBelow(64);
    Bytes plain;
    for (size_t b = 0; b < nblocks; ++b) {
      const Bytes block = CompressibleBlock(rng, 75);
      plain.insert(plain.end(), block.begin(), block.end());
    }
    const auto ext = MakeExtent(first, nblocks, 1000 + first);

    Transaction wr;
    ASSERT_TRUE(format->MakeWrite(ext, plain, wr).ok());
    // 75%-runs compress well past min_gain: every block sheds its tail.
    EXPECT_EQ(CountTrims(wr), nblocks) << spec.Name();
    obj.ApplyWrite(wr);

    Transaction rd;
    format->MakeRead(ext, rd);
    Bytes out(plain.size());
    ASSERT_TRUE(format->FinishRead(ext, obj.ServeRead(rd), out).ok());
    EXPECT_EQ(out, plain) << spec.Name() << " nblocks=" << nblocks;
  }
  const CompressStats& stats = format->compress_stats();
  EXPECT_EQ(stats.compressed_blocks, 1u + 3u + 8u);
  EXPECT_EQ(stats.verbatim_blocks, 0u);
  EXPECT_EQ(stats.decompressed_blocks, stats.compressed_blocks);
  EXPECT_LT(stats.stored_bytes, stats.in_bytes / 2);
}

TEST_P(CompressedFormat, IncompressibleBlocksStoredVerbatim) {
  const auto spec = GetParam();
  auto format = MakeFormat(spec, TestKey(), kObjectSize);
  ASSERT_NE(format, nullptr);
  Rng rng(11);
  FakeObject obj;

  const Bytes plain = rng.RandomBytes(2 * kBlockSize);
  const auto ext = MakeExtent(0, 2, 0);
  Transaction wr;
  ASSERT_TRUE(format->MakeWrite(ext, plain, wr).ok());
  EXPECT_EQ(CountTrims(wr), 0u);  // full slots: nothing to release
  obj.ApplyWrite(wr);

  Transaction rd;
  format->MakeRead(ext, rd);
  Bytes out(plain.size());
  ASSERT_TRUE(format->FinishRead(ext, obj.ServeRead(rd), out).ok());
  EXPECT_EQ(out, plain);

  const CompressStats& stats = format->compress_stats();
  EXPECT_EQ(stats.compressed_blocks, 0u);
  EXPECT_EQ(stats.verbatim_blocks, 2u);
  EXPECT_EQ(stats.stored_bytes, 2u * kBlockSize);
  EXPECT_EQ(stats.decompressed_blocks, 0u);  // verbatim reads skip the codec
}

TEST_P(CompressedFormat, RewriteRestoresThenRepunchesTheSlot) {
  const auto spec = GetParam();
  auto format = MakeFormat(spec, TestKey(), kObjectSize);
  ASSERT_NE(format, nullptr);
  Rng rng(12);
  FakeObject obj;
  const auto ext = MakeExtent(4, 1, 4);

  // Compressible write, then an incompressible rewrite of the same block:
  // the full-slot data op must overwrite the stale compressed bytes.
  Transaction wr1;
  ASSERT_TRUE(format->MakeWrite(ext, CompressibleBlock(rng, 80), wr1).ok());
  EXPECT_EQ(CountTrims(wr1), 1u);
  obj.ApplyWrite(wr1);

  const Bytes plain2 = rng.RandomBytes(kBlockSize);
  Transaction wr2;
  ASSERT_TRUE(format->MakeWrite(ext, plain2, wr2).ok());
  EXPECT_EQ(CountTrims(wr2), 0u);
  obj.ApplyWrite(wr2);

  Transaction rd;
  format->MakeRead(ext, rd);
  Bytes out(kBlockSize);
  ASSERT_TRUE(format->FinishRead(ext, obj.ServeRead(rd), out).ok());
  EXPECT_EQ(out, plain2);
}

TEST_P(CompressedFormat, TamperedMetadataHeaderFailsClosed) {
  const auto spec = GetParam();
  auto format = MakeFormat(spec, TestKey(), kObjectSize);
  ASSERT_NE(format, nullptr);
  Rng rng(13);
  FakeObject obj;
  const auto ext = MakeExtent(2, 1, 2);

  Transaction wr;
  ASSERT_TRUE(format->MakeWrite(ext, CompressibleBlock(rng, 80), wr).ok());
  obj.ApplyWrite(wr);

  // Corrupt the stored length in the per-block record. Authenticated
  // formats fail the MAC/AAD (the header is bound into the tag); the
  // unauthenticated format still fails on header validation or inside the
  // bounds-checked decompressor — never silently returns garbage lengths.
  FakeObject bad = obj;
  const size_t meta = spec.MetaPerBlock();
  switch (spec.layout) {
    case IvLayout::kUnaligned:
      bad.data[ext.first_block * (kBlockSize + meta) + kBlockSize + 1] ^= 0x44;
      break;
    case IvLayout::kObjectEnd:
      bad.data[kObjectSize + ext.first_block * meta + 1] ^= 0x44;
      break;
    case IvLayout::kOmap:
      for (auto& [k, v] : bad.omap) v[1] ^= 0x44;
      break;
    case IvLayout::kNone:
      FAIL();
  }

  Transaction rd;
  format->MakeRead(ext, rd);
  Bytes out(kBlockSize);
  const Status s = format->FinishRead(ext, bad.ServeRead(rd), out);
  EXPECT_FALSE(s.ok()) << spec.Name();
}

INSTANTIATE_TEST_SUITE_P(
    AllGeometries, CompressedFormat,
    ::testing::Values(
        CompressedSpec(IvLayout::kUnaligned),
        CompressedSpec(IvLayout::kObjectEnd),
        CompressedSpec(IvLayout::kOmap),
        CompressedSpec(IvLayout::kUnaligned, Integrity::kHmac),
        CompressedSpec(IvLayout::kObjectEnd, Integrity::kHmac),
        CompressedSpec(IvLayout::kOmap, Integrity::kHmac),
        CompressedSpec(IvLayout::kObjectEnd, Integrity::kNone,
                       CipherMode::kGcmRandom),
        CompressedSpec(IvLayout::kOmap, Integrity::kNone,
                       CipherMode::kGcmRandom)),
    [](const auto& info) {
      std::string name = info.param.Name();
      for (char& c : name) {
        if (c == '/' || c == '-' || c == '+') c = '_';
      }
      return name;
    });

// --- Spec plumbing ---

TEST(CompressedSpecTest, HeaderGrowsMetaPerBlockByThree) {
  EXPECT_EQ(CompressedSpec(IvLayout::kObjectEnd).MetaPerBlock(), 16u + 3u);
  EXPECT_EQ(
      CompressedSpec(IvLayout::kObjectEnd, Integrity::kHmac).MetaPerBlock(),
      48u + 3u);
  EXPECT_EQ(CompressedSpec(IvLayout::kOmap, Integrity::kNone,
                           CipherMode::kGcmRandom)
                .MetaPerBlock(),
            28u + 3u);
}

TEST(CompressedSpecTest, NameCarriesCodecSuffix) {
  EXPECT_EQ(CompressedSpec(IvLayout::kObjectEnd).Name(),
            "xts-random/object-end+lz");
  EXPECT_EQ(
      CompressedSpec(IvLayout::kOmap, Integrity::kHmac).Name(),
      "xts-random/omap+hmac+lz");
}

TEST(CompressedSpecTest, LengthPreservingFormatsRejectCompression) {
  // The paper's point: a format with no per-block record has nowhere to
  // put {codec, stored_len}, so compression cannot be expressed there.
  for (const CipherMode mode :
       {CipherMode::kNone, CipherMode::kXtsLba, CipherMode::kXtsEssiv,
        CipherMode::kWideLba}) {
    EncryptionSpec spec;
    spec.mode = mode;
    spec.compression.codec = Compression::kLz;
    EXPECT_EQ(MakeFormat(spec, TestKey(), kObjectSize), nullptr)
        << spec.Name();
  }
}

TEST(CompressedSpecTest, CompressionOffIsByteIdenticalMetadata) {
  // The compression-off spec must keep its exact pre-compression record:
  // same MetaPerBlock, same name — so existing images stay readable and
  // the sim's event stream stays identical.
  EncryptionSpec off = CompressedSpec(IvLayout::kObjectEnd);
  off.compression = {};
  EXPECT_EQ(off.MetaPerBlock(), 16u);
  EXPECT_EQ(off.Name(), "xts-random/object-end");
}

}  // namespace
}  // namespace vde::core
