#include "core/luks_header.h"

#include <gtest/gtest.h>

#include "crypto/rand.h"

namespace vde::core {
namespace {

LuksHeader::Params FastParams() {
  LuksHeader::Params p;
  p.pbkdf2_iterations = 10;  // fast for tests
  p.af_stripes = 8;
  return p;
}

TEST(LuksHeader, FormatAndUnlock) {
  crypto::Drbg rng(1);
  const Bytes key = rng.Generate(kMasterKeySize);
  const auto header = LuksHeader::Format(key, "secret", FastParams(), rng);
  auto unlocked = header.Unlock("secret");
  ASSERT_TRUE(unlocked.ok()) << unlocked.status().ToString();
  EXPECT_EQ(*unlocked, key);
}

TEST(LuksHeader, WrongPassphraseRejected) {
  crypto::Drbg rng(2);
  const Bytes key = rng.Generate(kMasterKeySize);
  const auto header = LuksHeader::Format(key, "secret", FastParams(), rng);
  auto unlocked = header.Unlock("wrong");
  EXPECT_EQ(unlocked.status().code(), StatusCode::kPermissionDenied);
}

TEST(LuksHeader, MultipleKeyslots) {
  crypto::Drbg rng(3);
  const Bytes key = rng.Generate(kMasterKeySize);
  auto header = LuksHeader::Format(key, "alice", FastParams(), rng);
  ASSERT_TRUE(header.AddKeyslot(key, "bob", rng).ok());
  EXPECT_EQ(header.ActiveKeyslots(), 2u);
  EXPECT_TRUE(header.Unlock("alice").ok());
  EXPECT_TRUE(header.Unlock("bob").ok());
  EXPECT_EQ(*header.Unlock("bob"), key);
}

TEST(LuksHeader, AddKeyslotRequiresTrueMasterKey) {
  crypto::Drbg rng(4);
  const Bytes key = rng.Generate(kMasterKeySize);
  auto header = LuksHeader::Format(key, "pw", FastParams(), rng);
  const Bytes fake = rng.Generate(kMasterKeySize);
  EXPECT_EQ(header.AddKeyslot(fake, "evil", rng).code(),
            StatusCode::kPermissionDenied);
}

TEST(LuksHeader, RemoveKeyslotRevokesAccess) {
  crypto::Drbg rng(5);
  const Bytes key = rng.Generate(kMasterKeySize);
  auto header = LuksHeader::Format(key, "alice", FastParams(), rng);
  ASSERT_TRUE(header.AddKeyslot(key, "bob", rng).ok());
  ASSERT_TRUE(header.RemoveKeyslot("alice").ok());
  EXPECT_EQ(header.ActiveKeyslots(), 1u);
  EXPECT_FALSE(header.Unlock("alice").ok());
  EXPECT_TRUE(header.Unlock("bob").ok());
}

TEST(LuksHeader, SerializeRoundtrip) {
  crypto::Drbg rng(6);
  const Bytes key = rng.Generate(kMasterKeySize);
  auto header = LuksHeader::Format(key, "pw", FastParams(), rng);
  ASSERT_TRUE(header.AddKeyslot(key, "pw2", rng).ok());
  const Bytes blob = header.Serialize();
  auto parsed = LuksHeader::Deserialize(blob);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ActiveKeyslots(), 2u);
  auto unlocked = parsed->Unlock("pw2");
  ASSERT_TRUE(unlocked.ok());
  EXPECT_EQ(*unlocked, key);
}

TEST(LuksHeader, CorruptBlobRejected) {
  crypto::Drbg rng(7);
  const Bytes key = rng.Generate(kMasterKeySize);
  auto header = LuksHeader::Format(key, "pw", FastParams(), rng);
  Bytes blob = header.Serialize();
  Bytes corrupted = blob;
  corrupted[0] ^= 0xFF;  // magic
  EXPECT_FALSE(LuksHeader::Deserialize(corrupted).ok());
  const Bytes truncated(blob.begin(), blob.begin() + 20);
  EXPECT_FALSE(LuksHeader::Deserialize(truncated).ok());
}

TEST(LuksHeader, SlotMaterialDoesNotLeakKey) {
  crypto::Drbg rng(8);
  const Bytes key = rng.Generate(kMasterKeySize);
  auto header = LuksHeader::Format(key, "pw", FastParams(), rng);
  const Bytes blob = header.Serialize();
  // The master key must not appear anywhere in the serialized header.
  EXPECT_EQ(std::search(blob.begin(), blob.end(), key.begin(), key.end()),
            blob.end());
}

}  // namespace
}  // namespace vde::core
