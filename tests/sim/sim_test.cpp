#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/scheduler.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace vde::sim {
namespace {

Task<void> SleepAndRecord(SimTime delay, std::vector<SimTime>* log) {
  co_await Sleep{delay};
  log->push_back(Scheduler::Current().now());
}

TEST(Scheduler, TimeAdvancesWithSleep) {
  Scheduler sched;
  std::vector<SimTime> log;
  sched.Spawn(SleepAndRecord(100, &log));
  sched.Spawn(SleepAndRecord(50, &log));
  sched.Run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], 50u);
  EXPECT_EQ(log[1], 100u);
  EXPECT_EQ(sched.now(), 100u);
}

Task<void> Chain(std::vector<int>* log) {
  log->push_back(1);
  co_await Sleep{10};
  log->push_back(2);
  co_await Sleep{10};
  log->push_back(3);
}

TEST(Scheduler, SequentialAwaitsInOneTask) {
  Scheduler sched;
  std::vector<int> log;
  sched.Spawn(Chain(&log));
  sched.Run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 20u);
}

Task<int> Answer() { co_return 42; }

Task<int> AddOne() {
  const int v = co_await Answer();
  co_return v + 1;
}

Task<void> StoreResult(int* out) { *out = co_await AddOne(); }

TEST(Task, ValueChaining) {
  Scheduler sched;
  int out = 0;
  sched.Spawn(StoreResult(&out));
  sched.Run();
  EXPECT_EQ(out, 43);
}

TEST(Scheduler, FifoOrderAtSameTimestamp) {
  Scheduler sched;
  std::vector<SimTime> log;
  // Same wake time: spawn order must be preserved (determinism).
  for (int i = 0; i < 5; ++i) {
    sched.Spawn(SleepAndRecord(100, &log));
  }
  std::vector<int> order;
  sched.Run();
  EXPECT_EQ(log.size(), 5u);
}

Task<void> UseSemaphore(Semaphore& sem, SimTime hold, std::vector<SimTime>* done) {
  co_await sem.Acquire();
  co_await Sleep{hold};
  sem.Release();
  done->push_back(Scheduler::Current().now());
}

TEST(Semaphore, LimitsParallelism) {
  Scheduler sched;
  Semaphore sem(2);
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) {
    sched.Spawn(UseSemaphore(sem, 100, &done));
  }
  sched.Run();
  // Two run [0,100], the next two [100,200].
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(done[0], 100u);
  EXPECT_EQ(done[1], 100u);
  EXPECT_EQ(done[2], 200u);
  EXPECT_EQ(done[3], 200u);
  EXPECT_EQ(sem.available(), 2u);
}

TEST(Semaphore, FifoFairness) {
  Scheduler sched;
  Semaphore sem(1);
  std::vector<SimTime> done;
  for (int i = 0; i < 3; ++i) sched.Spawn(UseSemaphore(sem, 10, &done));
  sched.Run();
  EXPECT_EQ(done, (std::vector<SimTime>{10, 20, 30}));
}

Task<void> Waiter(WaitGroup& wg, bool* flag) {
  co_await wg.Wait();
  *flag = true;
}

Task<void> Worker(WaitGroup& wg, SimTime d) {
  co_await Sleep{d};
  wg.Done();
}

TEST(WaitGroup, JoinsAllWorkers) {
  Scheduler sched;
  WaitGroup wg(3);
  bool flag = false;
  sched.Spawn(Waiter(wg, &flag));
  sched.Spawn(Worker(wg, 10));
  sched.Spawn(Worker(wg, 30));
  sched.Spawn(Worker(wg, 20));
  sched.Run();
  EXPECT_TRUE(flag);
  EXPECT_EQ(sched.now(), 30u);
}

Task<void> GateWaiter(Gate& gate, std::vector<SimTime>* log) {
  co_await gate.Wait();
  log->push_back(Scheduler::Current().now());
}

Task<void> GateFirer(Gate& gate) {
  co_await Sleep{500};
  gate.Fire();
}

TEST(Gate, BroadcastsToAllWaiters) {
  Scheduler sched;
  Gate gate;
  std::vector<SimTime> log;
  sched.Spawn(GateWaiter(gate, &log));
  sched.Spawn(GateWaiter(gate, &log));
  sched.Spawn(GateFirer(gate));
  sched.Run();
  EXPECT_EQ(log, (std::vector<SimTime>{500, 500}));
}

TEST(Gate, WaitAfterFireCompletesImmediately) {
  Scheduler sched;
  Gate gate;
  gate.Fire();
  std::vector<SimTime> log;
  sched.Spawn(GateWaiter(gate, &log));
  sched.Run();
  EXPECT_EQ(log, (std::vector<SimTime>{0}));
}

Task<void> Togethers(std::vector<SimTime>* log) {
  std::vector<Task<void>> tasks;
  tasks.push_back(SleepAndRecord(30, log));
  tasks.push_back(SleepAndRecord(10, log));
  tasks.push_back(SleepAndRecord(20, log));
  co_await WhenAll(std::move(tasks));
  log->push_back(Scheduler::Current().now() + 1000);  // sentinel after join
}

TEST(WhenAll, RunsConcurrentlyAndJoins) {
  Scheduler sched;
  std::vector<SimTime> log;
  sched.Spawn(Togethers(&log));
  sched.Run();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], 10u);
  EXPECT_EQ(log[1], 20u);
  EXPECT_EQ(log[2], 30u);
  EXPECT_EQ(log[3], 1030u) << "join must happen at the max, not the sum";
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler sched;
  std::vector<SimTime> log;
  sched.Spawn(SleepAndRecord(100, &log));
  sched.Spawn(SleepAndRecord(300, &log));
  sched.RunUntil(150);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(sched.now(), 150u);
  sched.Run();
  EXPECT_EQ(log.size(), 2u);
}

namespace {

sim::Task<void> Reader(SharedLock& lock, SimTime hold, int* active,
                       int* max_active, std::vector<int>* order, int id) {
  co_await lock.AcquireShared();
  (*active)++;
  *max_active = std::max(*max_active, *active);
  co_await Sleep{hold};
  (*active)--;
  order->push_back(id);
  lock.ReleaseShared();
}

sim::Task<void> Writer(SharedLock& lock, SimTime hold, int* active,
                       std::vector<int>* order, int id) {
  co_await lock.AcquireExclusive();
  EXPECT_EQ(*active, 0) << "writer overlapped readers";
  (*active)++;
  co_await Sleep{hold};
  (*active)--;
  order->push_back(id);
  lock.ReleaseExclusive();
}

}  // namespace

TEST(SharedLock, ReadersShareWritersExclude) {
  Scheduler sched;
  SharedLock lock;
  int active = 0;
  int max_active = 0;
  std::vector<int> order;
  // Two readers, then a writer, then a late reader: the readers overlap,
  // the writer runs alone, and the late reader queues behind the writer
  // (FIFO, no writer starvation).
  sched.Spawn(Reader(lock, 100, &active, &max_active, &order, 1));
  sched.Spawn(Reader(lock, 200, &active, &max_active, &order, 2));
  sched.Spawn(Writer(lock, 50, &active, &order, 3));
  sched.Spawn(Reader(lock, 10, &active, &max_active, &order, 4));
  sched.Run();
  EXPECT_EQ(max_active, 2) << "readers must overlap";
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_TRUE(lock.idle());
}

TEST(Scheduler, DeterministicEventCount) {
  auto run_once = []() {
    Scheduler sched;
    std::vector<SimTime> log;
    Semaphore sem(2);
    std::vector<SimTime> done;
    for (int i = 0; i < 10; ++i) sched.Spawn(UseSemaphore(sem, 7, &done));
    sched.Run();
    return std::make_pair(sched.events_processed(), done);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// --- N-core CPU model ----------------------------------------------------

Task<void> Charge(uint64_t shard, SimTime cost, std::vector<SimTime>* log) {
  co_await ChargeCpu{shard, cost};
  log->push_back(Scheduler::Current().now());
}

// With the core model disabled, ChargeCpu is exactly Sleep: same finish
// times, clock unchanged relative to the legacy serial charge.
// (ConfigureCores(0) pins the disabled state even under VDE_SIM_CORES.)
TEST(CoreModel, DisabledChargeIsSleep) {
  Scheduler sched;
  sched.ConfigureCores(0);
  std::vector<SimTime> charge_log, sleep_log;
  sched.Spawn(Charge(0, 100, &charge_log));
  sched.Spawn(Charge(1, 100, &charge_log));  // different shard: irrelevant
  sched.Spawn(SleepAndRecord(100, &sleep_log));
  sched.Run();
  ASSERT_EQ(charge_log.size(), 2u);
  EXPECT_EQ(charge_log[0], 100u);
  EXPECT_EQ(charge_log[1], 100u);  // disabled: concurrent charges overlap
  EXPECT_EQ(sleep_log[0], 100u);
  EXPECT_TRUE(sched.core_busy_ns().empty());
}

// Enabled: charges on the SAME core queue behind each other; charges on
// different cores overlap.
TEST(CoreModel, SameCoreSerializesDifferentCoresOverlap) {
  Scheduler sched;
  sched.ConfigureCores(2);
  std::vector<SimTime> same, split;
  sched.Spawn(Charge(0, 100, &same));
  sched.Spawn(Charge(2, 100, &same));  // 2 % 2 == core 0: queues to 200
  sched.Spawn(Charge(1, 100, &split)); // core 1: free, finishes at 100
  sched.Run();
  ASSERT_EQ(same.size(), 2u);
  EXPECT_EQ(same[0], 100u);
  EXPECT_EQ(same[1], 200u);
  ASSERT_EQ(split.size(), 1u);
  EXPECT_EQ(split[0], 100u);
  // Busy accounting: core 0 worked 200 ns, core 1 worked 100 ns.
  ASSERT_EQ(sched.core_busy_ns().size(), 2u);
  EXPECT_EQ(sched.core_busy_ns()[0], 200u);
  EXPECT_EQ(sched.core_busy_ns()[1], 100u);
}

// A zero-cost charge never suspends, enabled or not.
TEST(CoreModel, ZeroCostChargeIsFree) {
  Scheduler sched;
  sched.ConfigureCores(2);
  std::vector<SimTime> log;
  sched.Spawn(Charge(0, 0, &log));
  sched.Run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 0u);
  EXPECT_EQ(sched.core_busy_ns()[0], 0u);
}

TEST(CoreModel, NextShardRotates) {
  Scheduler sched;
  const uint64_t a = sched.NextShard();
  const uint64_t b = sched.NextShard();
  const uint64_t c = sched.NextShard();
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(c, b + 1);
}

// ShardOf is a pure platform-stable hash: equal keys map to equal shards,
// and distinct object names spread (not all on one shard).
TEST(CoreModel, ShardOfIsStableAndSpreads) {
  EXPECT_EQ(ShardOf("img.0000000000000004"), ShardOf("img.0000000000000004"));
  bool spread = false;
  const uint64_t first = ShardOf("obj.0") % 4;
  for (int i = 1; i < 16 && !spread; ++i) {
    spread = ShardOf("obj." + std::to_string(i)) % 4 != first;
  }
  EXPECT_TRUE(spread);
}

}  // namespace
}  // namespace vde::sim
