#include "crypto/xts.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vde::crypto {
namespace {

TEST(Xts, Ieee1619Vector1) {
  // XTS-AES-128 Vector 1: all-zero keys, tweak 0, 32 zero bytes.
  const Bytes key(32, 0x00);
  const Bytes tweak(16, 0x00);
  const Bytes pt(32, 0x00);
  Bytes ct(32);
  XtsCipher xts(Backend::kSoft, key);
  xts.Encrypt(tweak, pt, ct);
  EXPECT_EQ(ToHex(ct),
            "917cf69ebd68b2ec9b9fe9a3eadda692cd43d2f59598ed858c02c2652fbf922e");
  Bytes back(32);
  xts.Decrypt(tweak, ct, back);
  EXPECT_EQ(back, pt);
}

TEST(Xts, MulAlphaKnownValues) {
  uint8_t t[16] = {};
  t[0] = 0x01;
  XtsCipher::MulAlpha(t);
  EXPECT_EQ(t[0], 0x02);
  // High bit of byte 15 wraps to the reduction polynomial 0x87 in byte 0.
  uint8_t u[16] = {};
  u[15] = 0x80;
  XtsCipher::MulAlpha(u);
  EXPECT_EQ(u[0], 0x87);
  EXPECT_EQ(u[15], 0x00);
}

class XtsCross : public ::testing::TestWithParam<size_t> {};

TEST_P(XtsCross, SoftMatchesOpensslRandom) {
  const size_t key_size = GetParam();
  Rng rng(0x7157 + key_size);
  for (int trial = 0; trial < 20; ++trial) {
    // OpenSSL rejects key1 == key2; random keys are always distinct.
    const Bytes key = rng.RandomBytes(key_size);
    XtsCipher soft(Backend::kSoft, key);
    XtsCipher evp(Backend::kOpenssl, key);
    const Bytes tweak = rng.RandomBytes(16);
    const size_t len = 16 * rng.NextInRange(1, 32);
    const Bytes pt = rng.RandomBytes(len);
    Bytes a(len), b(len);
    soft.Encrypt(tweak, pt, a);
    evp.Encrypt(tweak, pt, b);
    ASSERT_EQ(ToHex(a), ToHex(b)) << "len=" << len;
    Bytes da(len), db(len);
    soft.Decrypt(tweak, a, da);
    evp.Decrypt(tweak, b, db);
    ASSERT_EQ(da, pt);
    ASSERT_EQ(db, pt);
  }
}

TEST_P(XtsCross, CiphertextStealingCrossValidates) {
  const size_t key_size = GetParam();
  Rng rng(0xC75 + key_size);
  for (size_t len = 17; len <= 67; ++len) {
    if (len % 16 == 0) continue;
    const Bytes key = rng.RandomBytes(key_size);
    XtsCipher soft(Backend::kSoft, key);
    XtsCipher evp(Backend::kOpenssl, key);
    const Bytes tweak = rng.RandomBytes(16);
    const Bytes pt = rng.RandomBytes(len);
    Bytes a(len), b(len);
    soft.Encrypt(tweak, pt, a);
    evp.Encrypt(tweak, pt, b);
    ASSERT_EQ(ToHex(a), ToHex(b)) << "len=" << len;
    Bytes back(len);
    soft.Decrypt(tweak, a, back);
    ASSERT_EQ(back, pt) << "len=" << len;
  }
}

INSTANTIATE_TEST_SUITE_P(KeySizes, XtsCross,
                         ::testing::Values(size_t{32}, size_t{64}),
                         [](const auto& info) {
                           return "Xts" + std::to_string(info.param * 4);
                         });

TEST(Xts, SectorRoundtripInPlace) {
  Rng rng(77);
  const Bytes key = rng.RandomBytes(64);
  XtsCipher xts(Backend::kSoft, key);
  const Bytes tweak = rng.RandomBytes(16);
  const Bytes orig = rng.RandomBytes(4096);
  Bytes buf = orig;
  xts.Encrypt(tweak, buf, buf);
  EXPECT_NE(buf, orig);
  xts.Decrypt(tweak, buf, buf);
  EXPECT_EQ(buf, orig);
}

TEST(Xts, NarrowBlockLeakage) {
  // The paper's §2.1 observation: with the SAME tweak, changing one 16-byte
  // sub-block leaves all other ciphertext sub-blocks identical — an
  // eavesdropper sees exactly which sub-block changed.
  Rng rng(88);
  const Bytes key = rng.RandomBytes(64);
  XtsCipher xts(Backend::kOpenssl, key);
  const Bytes tweak = rng.RandomBytes(16);
  Bytes pt = rng.RandomBytes(4096);
  Bytes c0(4096), c1(4096);
  xts.Encrypt(tweak, pt, c0);
  pt[37 * 16 + 3] ^= 0xff;  // mutate sub-block 37 only
  xts.Encrypt(tweak, pt, c1);
  for (size_t blk = 0; blk < 256; ++blk) {
    const bool same = std::equal(c0.begin() + blk * 16, c0.begin() + blk * 16 + 16,
                                 c1.begin() + blk * 16);
    EXPECT_EQ(same, blk != 37) << "sub-block " << blk;
  }
}

TEST(Xts, FreshTweakHidesLocality) {
  // With a FRESH random tweak (the paper's scheme) every sub-block changes.
  Rng rng(89);
  const Bytes key = rng.RandomBytes(64);
  XtsCipher xts(Backend::kOpenssl, key);
  Bytes pt = rng.RandomBytes(4096);
  Bytes c0(4096), c1(4096);
  xts.Encrypt(rng.RandomBytes(16), pt, c0);
  pt[37 * 16 + 3] ^= 0xff;
  xts.Encrypt(rng.RandomBytes(16), pt, c1);
  int identical_blocks = 0;
  for (size_t blk = 0; blk < 256; ++blk) {
    if (std::equal(c0.begin() + blk * 16, c0.begin() + blk * 16 + 16,
                   c1.begin() + blk * 16)) {
      identical_blocks++;
    }
  }
  EXPECT_EQ(identical_blocks, 0);
}

TEST(Xts, MixAndMatchForgeryIsWellFormed) {
  // §2.1: an attacker can splice sub-blocks of two ciphertext versions of
  // the same sector (same tweak) and the result decrypts to a plaintext that
  // mixes both versions — undetectable without a MAC.
  Rng rng(90);
  const Bytes key = rng.RandomBytes(64);
  XtsCipher xts(Backend::kOpenssl, key);
  const Bytes tweak = rng.RandomBytes(16);
  const Bytes v1 = rng.RandomBytes(4096);
  const Bytes v2 = rng.RandomBytes(4096);
  Bytes c1(4096), c2(4096);
  xts.Encrypt(tweak, v1, c1);
  xts.Encrypt(tweak, v2, c2);
  // Forge: first half from v1's ciphertext, second half from v2's.
  Bytes forged = c1;
  std::copy(c2.begin() + 2048, c2.end(), forged.begin() + 2048);
  Bytes decrypted(4096);
  xts.Decrypt(tweak, forged, decrypted);
  EXPECT_TRUE(std::equal(decrypted.begin(), decrypted.begin() + 2048,
                         v1.begin()));
  EXPECT_TRUE(std::equal(decrypted.begin() + 2048, decrypted.end(),
                         v2.begin() + 2048));
}

TEST(Xts, TweakSensitivity) {
  Rng rng(91);
  const Bytes key = rng.RandomBytes(64);
  XtsCipher xts(Backend::kSoft, key);
  const Bytes pt = rng.RandomBytes(64);
  Bytes t1 = rng.RandomBytes(16);
  Bytes c1(64), c2(64);
  xts.Encrypt(t1, pt, c1);
  t1[15] ^= 0x01;
  xts.Encrypt(t1, pt, c2);
  EXPECT_NE(ToHex(c1), ToHex(c2));
}

}  // namespace
}  // namespace vde::crypto
