#include "crypto/afsplit.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vde::crypto {
namespace {

TEST(AfSplit, SplitMergeRoundtrip) {
  Rng rng(300);
  const Bytes key = rng.RandomBytes(64);
  const size_t stripes = 4000;  // LUKS default
  const Bytes noise = rng.RandomBytes((stripes - 1) * key.size());
  const Bytes split = AfSplit(key, stripes, noise);
  EXPECT_EQ(split.size(), key.size() * stripes);
  EXPECT_EQ(AfMerge(split, stripes), key);
}

TEST(AfSplit, SingleStripeIsIdentityLike) {
  Rng rng(301);
  const Bytes key = rng.RandomBytes(32);
  const Bytes split = AfSplit(key, 1, {});
  EXPECT_EQ(AfMerge(split, 1), key);
}

TEST(AfSplit, AnyDamagedStripeDestroysKey) {
  Rng rng(302);
  const Bytes key = rng.RandomBytes(32);
  const size_t stripes = 16;
  const Bytes noise = rng.RandomBytes((stripes - 1) * key.size());
  Bytes split = AfSplit(key, stripes, noise);
  // Damage one byte in each stripe in turn; merge must never return the key.
  for (size_t s = 0; s < stripes; ++s) {
    Bytes damaged = split;
    damaged[s * key.size() + 7] ^= 0x01;
    EXPECT_NE(AfMerge(damaged, stripes), key) << "stripe " << s;
  }
}

TEST(AfSplit, SplitMaterialLooksRandom) {
  // The split must not expose the key in any single stripe.
  Rng rng(303);
  const Bytes key(32, 0xAA);  // highly structured key
  const size_t stripes = 8;
  const Bytes noise = rng.RandomBytes((stripes - 1) * key.size());
  const Bytes split = AfSplit(key, stripes, noise);
  for (size_t s = 0; s < stripes; ++s) {
    EXPECT_FALSE(std::equal(split.begin() + s * 32,
                            split.begin() + s * 32 + 32, key.begin()))
        << "stripe " << s << " leaked the key";
  }
}

TEST(AfSplit, DifferentNoiseDifferentSplit) {
  Rng rng(304);
  const Bytes key = rng.RandomBytes(32);
  const Bytes n1 = rng.RandomBytes(3 * 32);
  const Bytes n2 = rng.RandomBytes(3 * 32);
  EXPECT_NE(AfSplit(key, 4, n1), AfSplit(key, 4, n2));
}

}  // namespace
}  // namespace vde::crypto
