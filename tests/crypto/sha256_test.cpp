#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vde::crypto {
namespace {

std::string DigestHex(ByteSpan data) {
  const auto d = Sha256::Digest(data);
  return ToHex(ByteSpan(d.data(), d.size()));
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(DigestHex({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(DigestHex(BytesOf("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      DigestHex(BytesOf("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  const auto d = h.Finish();
  EXPECT_EQ(ToHex(ByteSpan(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShotAtAllSplitPoints) {
  const Bytes data = BytesOf(
      "The quick brown fox jumps over the lazy dog, repeatedly, to stress "
      "block boundaries in the streaming interface. 0123456789");
  const std::string expect = DigestHex(data);
  for (size_t split = 0; split <= data.size(); split += 7) {
    Sha256 h;
    h.Update(ByteSpan(data.data(), split));
    h.Update(ByteSpan(data.data() + split, data.size() - split));
    const auto d = h.Finish();
    ASSERT_EQ(ToHex(ByteSpan(d.data(), d.size())), expect) << "split=" << split;
  }
}

TEST(Sha256, LengthSensitivity) {
  // Messages around the 55/56-byte padding boundary must all hash distinctly.
  Rng rng(99);
  std::set<std::string> seen;
  for (size_t len = 50; len <= 70; ++len) {
    seen.insert(DigestHex(Bytes(len, 0x5a)));
  }
  EXPECT_EQ(seen.size(), 21u);
}

TEST(Sha256, DifferentInputsDifferentDigests) {
  Rng rng(123);
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(DigestHex(rng.RandomBytes(32)));
  }
  EXPECT_EQ(seen.size(), 200u);
}

}  // namespace
}  // namespace vde::crypto
