#include <gtest/gtest.h>

#include "crypto/cbc.h"
#include "crypto/essiv.h"
#include "util/rng.h"

namespace vde::crypto {
namespace {

// NIST SP 800-38A F.2.1 CBC-AES128 vectors.
TEST(Cbc, NistSp80038aVector) {
  const Bytes key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes iv = FromHex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = FromHex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const Bytes expect_ct = FromHex(
      "7649abac8119b246cee98e9b12e9197d"
      "5086cb9b507219ee95db113a917678b2"
      "73bed6b8e3c1743b7116e69e22229516"
      "3ff1caa1681fac09120eca307586e1a7");
  Bytes ct(pt.size());
  CbcCipher cbc(Backend::kSoft, key);
  cbc.Encrypt(iv, pt, ct);
  EXPECT_EQ(ToHex(ct), ToHex(expect_ct));
  Bytes back(pt.size());
  cbc.Decrypt(iv, ct, back);
  EXPECT_EQ(back, pt);
}

TEST(Cbc, SoftMatchesOpensslBackend) {
  Rng rng(44);
  const Bytes key = rng.RandomBytes(32);
  const Bytes iv = rng.RandomBytes(16);
  const Bytes pt = rng.RandomBytes(512);
  Bytes a(512), b(512);
  CbcCipher(Backend::kSoft, key).Encrypt(iv, pt, a);
  CbcCipher(Backend::kOpenssl, key).Encrypt(iv, pt, b);
  EXPECT_EQ(ToHex(a), ToHex(b));
}

TEST(Cbc, InPlaceRoundtrip) {
  Rng rng(45);
  const Bytes key = rng.RandomBytes(16);
  const Bytes iv = rng.RandomBytes(16);
  const Bytes orig = rng.RandomBytes(256);
  Bytes buf = orig;
  CbcCipher cbc(Backend::kSoft, key);
  cbc.Encrypt(iv, buf, buf);
  EXPECT_NE(buf, orig);
  cbc.Decrypt(iv, buf, buf);
  EXPECT_EQ(buf, orig);
}

TEST(Cbc, FirstChangedBlockLeaks) {
  // §2.1: in CBC an eavesdropper can find the FIRST sub-block where the
  // plaintext changed (everything after is garbled by chaining).
  Rng rng(46);
  const Bytes key = rng.RandomBytes(16);
  const Bytes iv = rng.RandomBytes(16);
  Bytes pt = rng.RandomBytes(256);
  Bytes c0(256), c1(256);
  CbcCipher cbc(Backend::kSoft, key);
  cbc.Encrypt(iv, pt, c0);
  pt[5 * 16] ^= 0x01;  // change block 5
  cbc.Encrypt(iv, pt, c1);
  for (int blk = 0; blk < 5; ++blk) {
    EXPECT_TRUE(std::equal(c0.begin() + blk * 16, c0.begin() + blk * 16 + 16,
                           c1.begin() + blk * 16))
        << "prefix block " << blk << " should be unchanged";
  }
  EXPECT_FALSE(std::equal(c0.begin() + 5 * 16, c0.begin() + 6 * 16,
                          c1.begin() + 5 * 16));
}

TEST(Essiv, DeterministicPerSector) {
  Rng rng(47);
  const Bytes key = rng.RandomBytes(32);
  Essiv essiv(Backend::kSoft, key);
  uint8_t a[16], b[16];
  essiv.DeriveIv(1234, a);
  essiv.DeriveIv(1234, b);
  EXPECT_EQ(ToHex(ByteSpan(a, 16)), ToHex(ByteSpan(b, 16)));
}

TEST(Essiv, DistinctAcrossSectors) {
  Rng rng(48);
  const Bytes key = rng.RandomBytes(32);
  Essiv essiv(Backend::kSoft, key);
  std::set<std::string> seen;
  for (uint64_t s = 0; s < 500; ++s) {
    uint8_t iv[16];
    essiv.DeriveIv(s, iv);
    seen.insert(ToHex(ByteSpan(iv, 16)));
  }
  EXPECT_EQ(seen.size(), 500u);
}

TEST(Essiv, KeyedBySha256OfKey) {
  Rng rng(49);
  Bytes key = rng.RandomBytes(32);
  Essiv a(Backend::kSoft, key);
  key[0] ^= 1;
  Essiv b(Backend::kSoft, key);
  uint8_t ia[16], ib[16];
  a.DeriveIv(7, ia);
  b.DeriveIv(7, ib);
  EXPECT_NE(ToHex(ByteSpan(ia, 16)), ToHex(ByteSpan(ib, 16)));
}

}  // namespace
}  // namespace vde::crypto
