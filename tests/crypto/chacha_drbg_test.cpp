#include <gtest/gtest.h>

#include <set>

#include "crypto/chacha20.h"
#include "crypto/rand.h"
#include "util/rng.h"

namespace vde::crypto {
namespace {

TEST(ChaCha20, Rfc8439KeystreamBlock) {
  // RFC 8439 §2.3.2: key 00..1f, nonce 000000090000004a00000000, counter 1.
  const Bytes key = FromHex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = FromHex("000000090000004a00000000");
  ChaCha20 stream(key, nonce, 1);
  Bytes ks(64);
  stream.Keystream(ks);
  EXPECT_EQ(ToHex(ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439Encryption) {
  // RFC 8439 §2.4.2 "Ladies and Gentlemen..." vector.
  const Bytes key = FromHex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = FromHex("000000000000004a00000000");
  Bytes msg = BytesOf(
      "Ladies and Gentlemen of the class of '99: If I could offer you only "
      "one tip for the future, sunscreen would be it.");
  ChaCha20 stream(key, nonce, 1);
  stream.XorStream(msg);
  EXPECT_EQ(ToHex(ByteSpan(msg.data(), 32)),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b");
}

TEST(ChaCha20, XorIsInvolution) {
  Rng rng(1);
  const Bytes key = rng.RandomBytes(32);
  const Bytes nonce = rng.RandomBytes(12);
  const Bytes orig = rng.RandomBytes(1000);
  Bytes buf = orig;
  ChaCha20 a(key, nonce);
  a.XorStream(buf);
  EXPECT_NE(buf, orig);
  ChaCha20 b(key, nonce);
  b.XorStream(buf);
  EXPECT_EQ(buf, orig);
}

TEST(ChaCha20, ChunkedMatchesWhole) {
  Rng rng(2);
  const Bytes key = rng.RandomBytes(32);
  const Bytes nonce = rng.RandomBytes(12);
  Bytes whole(257, 0);
  ChaCha20 a(key, nonce);
  a.Keystream(whole);

  // Same stream read in odd-sized chunks must agree — but note each
  // XorStream call starts at a block boundary internally only if the
  // previous call consumed whole blocks; here we consume block multiples.
  Bytes parts(257, 0);
  ChaCha20 b(key, nonce);
  b.Keystream(MutByteSpan(parts.data(), 128));
  b.Keystream(MutByteSpan(parts.data() + 128, 129));
  EXPECT_EQ(ToHex(ByteSpan(whole.data(), 128)),
            ToHex(ByteSpan(parts.data(), 128)));
}

TEST(Drbg, DeterministicSeedReproduces) {
  Drbg a(1234), b(1234);
  EXPECT_EQ(ToHex(a.Generate(64)), ToHex(b.Generate(64)));
}

TEST(Drbg, DifferentSeedsDiffer) {
  Drbg a(1), b(2);
  EXPECT_NE(ToHex(a.Generate(32)), ToHex(b.Generate(32)));
}

TEST(Drbg, SequentialOutputsDiffer) {
  Drbg d(7);
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(ToHex(d.Generate(16)));
  }
  EXPECT_EQ(seen.size(), 1000u) << "IV stream must never repeat";
}

TEST(Drbg, ReseedChangesStream) {
  Drbg a(42);
  Drbg b(42);
  (void)a.Generate(16);
  (void)b.Generate(16);
  a.Reseed();
  EXPECT_NE(ToHex(a.Generate(16)), ToHex(b.Generate(16)));
}

TEST(SystemRandom, ProducesEntropy) {
  Bytes a(32), b(32);
  SystemRandom(a);
  SystemRandom(b);
  EXPECT_NE(ToHex(a), ToHex(b));
  EXPECT_NE(ToHex(a), std::string(64, '0'));
}

}  // namespace
}  // namespace vde::crypto
