#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "util/rng.h"

namespace vde::crypto {
namespace {

std::string HmacHex(ByteSpan key, ByteSpan data) {
  const auto d = HmacSha256(key, data);
  return ToHex(ByteSpan(d.data(), d.size()));
}

// RFC 4231 test vectors.
TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(HmacHex(key, BytesOf("Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(HmacHex(BytesOf("Jefe"), BytesOf("what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(HmacHex(key, data),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, LongKeyIsHashed) {
  // RFC 4231 case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  EXPECT_EQ(HmacHex(key, BytesOf("Test Using Larger Than Block-Size Key - "
                                 "Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, StreamingMatchesOneShot) {
  Rng rng(55);
  const Bytes key = rng.RandomBytes(32);
  const Bytes data = rng.RandomBytes(300);
  HmacSha256Stream h(key);
  h.Update(ByteSpan(data.data(), 100));
  h.Update(ByteSpan(data.data() + 100, 200));
  const auto streamed = h.Finish();
  const auto oneshot = HmacSha256(key, data);
  EXPECT_EQ(ToHex(streamed), ToHex(oneshot));
}

TEST(HmacSha256, KeySensitivity) {
  Rng rng(56);
  const Bytes data = rng.RandomBytes(64);
  Bytes key = rng.RandomBytes(32);
  const auto a = HmacSha256(key, data);
  key[0] ^= 1;
  const auto b = HmacSha256(key, data);
  EXPECT_NE(ToHex(a), ToHex(b));
}

// RFC 7914 §11 PBKDF2-HMAC-SHA256 vectors.
TEST(Pbkdf2, Rfc7914Iter1) {
  Bytes out(64);
  Pbkdf2HmacSha256(BytesOf("passwd"), BytesOf("salt"), 1, out);
  EXPECT_EQ(ToHex(out),
            "55ac046e56e3089fec1691c22544b605f94185216dde0465e68b9d57c20dacbc"
            "49ca9cccf179b645991664b39d77ef317c71b845b1e30bd509112041d3a19783");
}

TEST(Pbkdf2, Rfc7914Iter80000) {
  Bytes out(64);
  Pbkdf2HmacSha256(BytesOf("Password"), BytesOf("NaCl"), 80000, out);
  EXPECT_EQ(ToHex(out),
            "4ddcd8f60b98be21830cee5ef22701f9641a4418d04c0414aeff08876b34ab56"
            "a1d425a1225833549adb841b51c9b3176a272bdebba1d078478f62b397f33c8d");
}

TEST(Pbkdf2, MoreIterationsChangeOutput) {
  Bytes a(32), b(32);
  Pbkdf2HmacSha256(BytesOf("pw"), BytesOf("salt"), 1, a);
  Pbkdf2HmacSha256(BytesOf("pw"), BytesOf("salt"), 2, b);
  EXPECT_NE(ToHex(a), ToHex(b));
}

TEST(Pbkdf2, OutputLengthSpansBlocks) {
  // 40 bytes requires two HMAC blocks; prefix must match the 32-byte run.
  Bytes short_out(32), long_out(40);
  Pbkdf2HmacSha256(BytesOf("pw"), BytesOf("salt"), 10, short_out);
  Pbkdf2HmacSha256(BytesOf("pw"), BytesOf("salt"), 10, long_out);
  EXPECT_EQ(ToHex(short_out), ToHex(ByteSpan(long_out.data(), 32)));
}

// RFC 5869 test case 1.
TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = FromHex("000102030405060708090a0b0c");
  const Bytes info = FromHex("f0f1f2f3f4f5f6f7f8f9");
  Bytes out(42);
  HkdfSha256(ikm, salt, info, out);
  EXPECT_EQ(ToHex(out),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, EmptySaltWorks) {
  Bytes out(32);
  HkdfSha256(BytesOf("input key material"), {}, BytesOf("ctx"), out);
  EXPECT_NE(ToHex(out), std::string(64, '0'));
}

TEST(Hkdf, InfoSeparatesOutputs) {
  Bytes a(32), b(32);
  HkdfSha256(BytesOf("ikm"), BytesOf("salt"), BytesOf("context-a"), a);
  HkdfSha256(BytesOf("ikm"), BytesOf("salt"), BytesOf("context-b"), b);
  EXPECT_NE(ToHex(a), ToHex(b));
}

}  // namespace
}  // namespace vde::crypto
