#include "crypto/gcm.h"

#include <gtest/gtest.h>
#include <openssl/evp.h>

#include "util/rng.h"

namespace vde::crypto {
namespace {

// NIST GCM spec test case 1: empty plaintext, zero key/IV.
TEST(Gcm, NistCase1EmptyPlaintext) {
  const Bytes key(16, 0x00);
  const Bytes iv(12, 0x00);
  GcmCipher gcm(Backend::kSoft, key);
  Bytes tag(16);
  gcm.Seal(iv, {}, {}, {}, tag);
  EXPECT_EQ(ToHex(tag), "58e2fccefa7e3061367f1d57a4e7455a");
}

// NIST GCM spec test case 2: 16 zero bytes.
TEST(Gcm, NistCase2SingleBlock) {
  const Bytes key(16, 0x00);
  const Bytes iv(12, 0x00);
  const Bytes pt(16, 0x00);
  GcmCipher gcm(Backend::kSoft, key);
  Bytes ct(16), tag(16);
  gcm.Seal(iv, {}, pt, ct, tag);
  EXPECT_EQ(ToHex(ct), "0388dace60b6a392f328c2b971b2fe78");
  EXPECT_EQ(ToHex(tag), "ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(Gcm, RoundtripWithAad) {
  Rng rng(60);
  const Bytes key = rng.RandomBytes(32);
  const Bytes iv = rng.RandomBytes(12);
  const Bytes aad = rng.RandomBytes(20);
  const Bytes pt = rng.RandomBytes(4096);
  GcmCipher gcm(Backend::kOpenssl, key);
  Bytes ct(pt.size()), tag(16);
  gcm.Seal(iv, aad, pt, ct, tag);
  Bytes back(pt.size());
  ASSERT_TRUE(gcm.Open(iv, aad, ct, back, tag));
  EXPECT_EQ(back, pt);
}

TEST(Gcm, TamperedCiphertextRejected) {
  Rng rng(61);
  const Bytes key = rng.RandomBytes(32);
  const Bytes iv = rng.RandomBytes(12);
  const Bytes pt = rng.RandomBytes(128);
  GcmCipher gcm(Backend::kSoft, key);
  Bytes ct(pt.size()), tag(16);
  gcm.Seal(iv, {}, pt, ct, tag);
  ct[50] ^= 0x01;
  Bytes back(pt.size(), 0xAA);
  EXPECT_FALSE(gcm.Open(iv, {}, ct, back, tag));
  // Output must be zeroed on failure, never partial plaintext.
  EXPECT_TRUE(std::all_of(back.begin(), back.end(),
                          [](uint8_t b) { return b == 0; }));
}

TEST(Gcm, TamperedTagRejected) {
  Rng rng(62);
  const Bytes key = rng.RandomBytes(16);
  const Bytes iv = rng.RandomBytes(12);
  const Bytes pt = rng.RandomBytes(64);
  GcmCipher gcm(Backend::kSoft, key);
  Bytes ct(pt.size()), tag(16);
  gcm.Seal(iv, {}, pt, ct, tag);
  tag[0] ^= 0x80;
  Bytes back(pt.size());
  EXPECT_FALSE(gcm.Open(iv, {}, ct, back, tag));
}

TEST(Gcm, TamperedAadRejected) {
  Rng rng(63);
  const Bytes key = rng.RandomBytes(16);
  const Bytes iv = rng.RandomBytes(12);
  const Bytes pt = rng.RandomBytes(64);
  Bytes aad = rng.RandomBytes(16);
  GcmCipher gcm(Backend::kSoft, key);
  Bytes ct(pt.size()), tag(16);
  gcm.Seal(iv, aad, pt, ct, tag);
  aad[3] ^= 0x01;
  Bytes back(pt.size());
  EXPECT_FALSE(gcm.Open(iv, aad, ct, back, tag));
}

// Cross-validate against OpenSSL's GCM on random inputs.
TEST(Gcm, MatchesOpensslEvp) {
  Rng rng(64);
  for (int trial = 0; trial < 10; ++trial) {
    const Bytes key = rng.RandomBytes(32);
    const Bytes iv = rng.RandomBytes(12);
    const Bytes aad = rng.RandomBytes(rng.NextBelow(48));
    const Bytes pt = rng.RandomBytes(1 + rng.NextBelow(1024));

    GcmCipher ours(Backend::kSoft, key);
    Bytes our_ct(pt.size()), our_tag(16);
    ours.Seal(iv, aad, pt, our_ct, our_tag);

    EVP_CIPHER_CTX* ctx = EVP_CIPHER_CTX_new();
    ASSERT_TRUE(ctx);
    ASSERT_EQ(EVP_EncryptInit_ex(ctx, EVP_aes_256_gcm(), nullptr, key.data(),
                                 iv.data()),
              1);
    int len = 0;
    if (!aad.empty()) {
      ASSERT_EQ(EVP_EncryptUpdate(ctx, nullptr, &len, aad.data(),
                                  static_cast<int>(aad.size())),
                1);
    }
    Bytes evp_ct(pt.size());
    ASSERT_EQ(EVP_EncryptUpdate(ctx, evp_ct.data(), &len, pt.data(),
                                static_cast<int>(pt.size())),
              1);
    int fin = 0;
    ASSERT_EQ(EVP_EncryptFinal_ex(ctx, evp_ct.data() + len, &fin), 1);
    Bytes evp_tag(16);
    ASSERT_EQ(EVP_CIPHER_CTX_ctrl(ctx, EVP_CTRL_GCM_GET_TAG, 16,
                                  evp_tag.data()),
              1);
    EVP_CIPHER_CTX_free(ctx);

    ASSERT_EQ(ToHex(our_ct), ToHex(evp_ct)) << "trial " << trial;
    ASSERT_EQ(ToHex(our_tag), ToHex(evp_tag)) << "trial " << trial;
  }
}

TEST(Gcm, IvReuseLeaksXorOfPlaintexts) {
  // Why GCM REQUIRES the true-nonce IV the paper's metadata provides:
  // reusing an IV leaks pt1 XOR pt2 directly (CTR keystream cancels).
  Rng rng(65);
  const Bytes key = rng.RandomBytes(32);
  const Bytes iv = rng.RandomBytes(12);
  const Bytes p1 = rng.RandomBytes(64);
  const Bytes p2 = rng.RandomBytes(64);
  GcmCipher gcm(Backend::kSoft, key);
  Bytes c1(64), c2(64), t1(16), t2(16);
  gcm.Seal(iv, {}, p1, c1, t1);
  gcm.Seal(iv, {}, p2, c2, t2);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(c1[i] ^ c2[i], p1[i] ^ p2[i]);
  }
}

}  // namespace
}  // namespace vde::crypto
