#include "crypto/wideblock.h"

#include <gtest/gtest.h>

#include <bit>

#include "util/rng.h"

namespace vde::crypto {
namespace {

class WideBlockSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(WideBlockSizes, Roundtrip) {
  const size_t size = GetParam();
  Rng rng(100 + size);
  WideBlockCipher wb(rng.RandomBytes(64));
  const Bytes tweak = rng.RandomBytes(16);
  const Bytes orig = rng.RandomBytes(size);
  Bytes buf = orig;
  wb.Encrypt(tweak, buf, buf);
  EXPECT_NE(buf, orig);
  wb.Decrypt(tweak, buf, buf);
  EXPECT_EQ(buf, orig);
}

INSTANTIATE_TEST_SUITE_P(SectorSizes, WideBlockSizes,
                         ::testing::Values(size_t{512}, size_t{520},
                                           size_t{4096}, size_t{4160}),
                         [](const auto& info) {
                           return "Size" + std::to_string(info.param);
                         });

int CountFlippedBits(ByteSpan a, ByteSpan b) {
  int flipped = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    flipped += std::popcount(static_cast<unsigned>(a[i] ^ b[i]));
  }
  return flipped;
}

TEST(WideBlock, FullDiffusionOnSingleBitChange) {
  // The property the paper cites (§2.2): every plaintext bit influences the
  // ENTIRE ciphertext sector, so an overwrite with the same tweak reveals
  // only that "something changed", never which sub-block.
  Rng rng(200);
  WideBlockCipher wb(rng.RandomBytes(64));
  const Bytes tweak = rng.RandomBytes(16);
  Bytes pt = rng.RandomBytes(4096);
  Bytes c0(4096), c1(4096);
  wb.Encrypt(tweak, pt, c0);
  pt[2000] ^= 0x01;  // one bit, middle of the sector
  wb.Encrypt(tweak, pt, c1);
  const int flipped = CountFlippedBits(c0, c1);
  const int total = 4096 * 8;
  EXPECT_GT(flipped, total / 3) << "expected ~half the bits to flip";
  EXPECT_LT(flipped, total * 2 / 3);
  // No 16-byte sub-block may remain identical (contrast with XTS).
  for (size_t blk = 0; blk < 4096 / 16; ++blk) {
    EXPECT_FALSE(std::equal(c0.begin() + blk * 16, c0.begin() + blk * 16 + 16,
                            c1.begin() + blk * 16))
        << "sub-block " << blk << " unchanged";
  }
}

TEST(WideBlock, DiffusionFromLeftHalfToo) {
  // Bit changes inside the first 32 bytes (the 'L' half) must also diffuse.
  Rng rng(201);
  WideBlockCipher wb(rng.RandomBytes(64));
  const Bytes tweak = rng.RandomBytes(16);
  Bytes pt = rng.RandomBytes(512);
  Bytes c0(512), c1(512);
  wb.Encrypt(tweak, pt, c0);
  pt[3] ^= 0x80;
  wb.Encrypt(tweak, pt, c1);
  const int flipped = CountFlippedBits(c0, c1);
  EXPECT_GT(flipped, 512 * 8 / 3);
}

TEST(WideBlock, DecryptDiffusesTamper) {
  // Flipping any ciphertext bit garbles the whole decrypted plaintext
  // ("poor man's integrity": tampering is at least always visible as noise).
  Rng rng(202);
  WideBlockCipher wb(rng.RandomBytes(64));
  const Bytes tweak = rng.RandomBytes(16);
  const Bytes pt = rng.RandomBytes(4096);
  Bytes ct(4096);
  wb.Encrypt(tweak, pt, ct);
  ct[100] ^= 0x01;
  Bytes back(4096);
  wb.Decrypt(tweak, ct, back);
  const int flipped = CountFlippedBits(pt, back);
  EXPECT_GT(flipped, 4096 * 8 / 3);
}

TEST(WideBlock, TweakSeparatesCiphertexts) {
  Rng rng(203);
  WideBlockCipher wb(rng.RandomBytes(64));
  const Bytes pt = rng.RandomBytes(512);
  Bytes t1 = rng.RandomBytes(16);
  Bytes c1(512), c2(512);
  wb.Encrypt(t1, pt, c1);
  t1[0] ^= 0x01;
  wb.Encrypt(t1, pt, c2);
  EXPECT_GT(CountFlippedBits(c1, c2), 512 * 8 / 3);
}

TEST(WideBlock, DeterministicWithSameTweak) {
  // Wide-block is still deterministic: identical (tweak, plaintext) produce
  // identical ciphertext — an exact overwrite remains detectable (paper
  // §2.2), which is why the random-IV scheme is stronger.
  Rng rng(204);
  WideBlockCipher wb(rng.RandomBytes(64));
  const Bytes tweak = rng.RandomBytes(16);
  const Bytes pt = rng.RandomBytes(512);
  Bytes c1(512), c2(512);
  wb.Encrypt(tweak, pt, c1);
  wb.Encrypt(tweak, pt, c2);
  EXPECT_EQ(c1, c2);
}

TEST(WideBlock, KeyHalvesBothMatter) {
  Rng rng(205);
  Bytes key = rng.RandomBytes(64);
  const Bytes tweak = rng.RandomBytes(16);
  const Bytes pt = rng.RandomBytes(512);
  Bytes c1(512), c2(512), c3(512);
  WideBlockCipher(key).Encrypt(tweak, pt, c1);
  key[0] ^= 1;  // first subkey
  WideBlockCipher(key).Encrypt(tweak, pt, c2);
  key[0] ^= 1;
  key[63] ^= 1;  // second subkey
  WideBlockCipher(key).Encrypt(tweak, pt, c3);
  EXPECT_NE(ToHex(c1), ToHex(c2));
  EXPECT_NE(ToHex(c1), ToHex(c3));
}

}  // namespace
}  // namespace vde::crypto
