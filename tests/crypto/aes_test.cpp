#include "crypto/aes.h"

#include <gtest/gtest.h>

#include "crypto/block_cipher.h"
#include "util/rng.h"

namespace vde::crypto {
namespace {

// FIPS-197 Appendix C known-answer tests.
struct Fips197Case {
  const char* key;
  const char* plain;
  const char* cipher;
};

class AesKat : public ::testing::TestWithParam<Fips197Case> {};

TEST_P(AesKat, EncryptMatchesFips197) {
  const auto& p = GetParam();
  SoftAes aes(FromHex(p.key));
  const Bytes pt = FromHex(p.plain);
  uint8_t out[16];
  aes.EncryptBlock(pt.data(), out);
  EXPECT_EQ(ToHex(ByteSpan(out, 16)), p.cipher);
}

TEST_P(AesKat, DecryptInverts) {
  const auto& p = GetParam();
  SoftAes aes(FromHex(p.key));
  const Bytes ct = FromHex(p.cipher);
  uint8_t out[16];
  aes.DecryptBlock(ct.data(), out);
  EXPECT_EQ(ToHex(ByteSpan(out, 16)), p.plain);
}

TEST_P(AesKat, OpensslBackendAgrees) {
  const auto& p = GetParam();
  auto aes = MakeAes(Backend::kOpenssl, FromHex(p.key));
  const Bytes pt = FromHex(p.plain);
  uint8_t out[16];
  aes->EncryptBlock(pt.data(), out);
  EXPECT_EQ(ToHex(ByteSpan(out, 16)), p.cipher);
}

INSTANTIATE_TEST_SUITE_P(
    Fips197, AesKat,
    ::testing::Values(
        Fips197Case{"000102030405060708090a0b0c0d0e0f",
                    "00112233445566778899aabbccddeeff",
                    "69c4e0d86a7b0430d8cdb78070b4c55a"},
        Fips197Case{"000102030405060708090a0b0c0d0e0f1011121314151617",
                    "00112233445566778899aabbccddeeff",
                    "dda97ca4864cdfe06eaf70a0ec0d7191"},
        Fips197Case{
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
            "00112233445566778899aabbccddeeff",
            "8ea2b7ca516745bfeafc49904b496089"}));

class AesCross : public ::testing::TestWithParam<size_t> {};

TEST_P(AesCross, SoftMatchesOpensslOnRandomInputs) {
  const size_t key_size = GetParam();
  Rng rng(0xA55E5 + key_size);
  for (int trial = 0; trial < 50; ++trial) {
    const Bytes key = rng.RandomBytes(key_size);
    SoftAes soft(key);
    auto evp = MakeAes(Backend::kOpenssl, key);
    const Bytes pt = rng.RandomBytes(16);
    uint8_t a[16], b[16];
    soft.EncryptBlock(pt.data(), a);
    evp->EncryptBlock(pt.data(), b);
    ASSERT_EQ(ToHex(ByteSpan(a, 16)), ToHex(ByteSpan(b, 16)))
        << "key=" << ToHex(key) << " pt=" << ToHex(pt);
    uint8_t da[16], db[16];
    soft.DecryptBlock(a, da);
    evp->DecryptBlock(b, db);
    ASSERT_EQ(ToHex(ByteSpan(da, 16)), ToHex(pt));
    ASSERT_EQ(ToHex(ByteSpan(db, 16)), ToHex(pt));
  }
}

TEST_P(AesCross, RoundtripRandomKeys) {
  const size_t key_size = GetParam();
  Rng rng(0xBEEF + key_size);
  for (int trial = 0; trial < 100; ++trial) {
    SoftAes aes(rng.RandomBytes(key_size));
    const Bytes pt = rng.RandomBytes(16);
    uint8_t ct[16], back[16];
    aes.EncryptBlock(pt.data(), ct);
    aes.DecryptBlock(ct, back);
    ASSERT_EQ(ToHex(ByteSpan(back, 16)), ToHex(pt));
    ASSERT_NE(ToHex(ByteSpan(ct, 16)), ToHex(pt));
  }
}

INSTANTIATE_TEST_SUITE_P(KeySizes, AesCross,
                         ::testing::Values(size_t{16}, size_t{24}, size_t{32}),
                         [](const auto& info) {
                           return "Key" + std::to_string(info.param * 8);
                         });

TEST(Aes, KeySizeReported) {
  Rng rng(3);
  EXPECT_EQ(SoftAes(rng.RandomBytes(16)).key_size(), 16u);
  EXPECT_EQ(SoftAes(rng.RandomBytes(32)).key_size(), 32u);
}

TEST(Aes, AvalancheOnPlaintextBit) {
  // Flipping one plaintext bit must flip ~half the ciphertext bits.
  Rng rng(5);
  const Bytes key = rng.RandomBytes(32);
  SoftAes aes(key);
  Bytes pt = rng.RandomBytes(16);
  uint8_t c0[16], c1[16];
  aes.EncryptBlock(pt.data(), c0);
  pt[7] ^= 0x10;
  aes.EncryptBlock(pt.data(), c1);
  int flipped = 0;
  for (int i = 0; i < 16; ++i) {
    flipped += std::popcount(static_cast<unsigned>(c0[i] ^ c1[i]));
  }
  EXPECT_GT(flipped, 40);
  EXPECT_LT(flipped, 88);
}

}  // namespace
}  // namespace vde::crypto
