#include "device/extent_allocator.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vde::dev {
namespace {

TEST(ExtentAllocator, AllocatesAlignedFirstFit) {
  ExtentAllocator a(1 << 20, 4096);
  auto x = a.Allocate(100);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(*x, 0u);
  auto y = a.Allocate(5000);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(*y, 4096u);  // 100 rounded to one sector
  EXPECT_EQ(a.free_bytes(), (1u << 20) - 4096 - 8192);
}

TEST(ExtentAllocator, RejectsZeroAndOverflow) {
  ExtentAllocator a(16 * 4096, 4096);
  EXPECT_FALSE(a.Allocate(0).ok());
  EXPECT_TRUE(a.Allocate(16 * 4096).ok());
  EXPECT_EQ(a.Allocate(1).status().code(), StatusCode::kOutOfSpace);
}

TEST(ExtentAllocator, FreeCoalescesNeighbors) {
  ExtentAllocator a(64 * 4096, 4096);
  auto x = a.Allocate(4096);
  auto y = a.Allocate(4096);
  auto z = a.Allocate(4096);
  ASSERT_TRUE(x.ok() && y.ok() && z.ok());
  a.Free(*x, 4096);
  a.Free(*z, 4096);
  // z coalesces with the trailing free space: fragments = {x}, {z..end}.
  EXPECT_EQ(a.fragments(), 2u);
  a.Free(*y, 4096);
  EXPECT_EQ(a.fragments(), 1u) << "freeing y must merge all into one";
  EXPECT_EQ(a.free_bytes(), 64u * 4096);
}

TEST(ExtentAllocator, ReusesFreedSpace) {
  ExtentAllocator a(8 * 4096, 4096);
  auto x = a.Allocate(8 * 4096);
  ASSERT_TRUE(x.ok());
  a.Free(*x, 8 * 4096);
  auto y = a.Allocate(8 * 4096);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(*y, 0u);
}

TEST(ExtentAllocator, RandomAllocFreeInvariant) {
  // Property: free_bytes accounting stays exact under random churn, and
  // allocations never overlap.
  ExtentAllocator a(1024 * 4096, 4096);
  Rng rng(5);
  std::vector<std::pair<uint64_t, uint64_t>> held;
  uint64_t outstanding = 0;
  for (int step = 0; step < 2000; ++step) {
    if (held.empty() || rng.NextBool(0.6)) {
      const uint64_t want = (1 + rng.NextBelow(16)) * 4096;
      auto got = a.Allocate(want);
      if (got.ok()) {
        for (const auto& [o, l] : held) {
          ASSERT_TRUE(*got + want <= o || o + l <= *got)
              << "overlapping allocation";
        }
        held.emplace_back(*got, want);
        outstanding += want;
      }
    } else {
      const size_t idx = rng.NextBelow(held.size());
      a.Free(held[idx].first, held[idx].second);
      outstanding -= held[idx].second;
      held.erase(held.begin() + static_cast<long>(idx));
    }
    ASSERT_EQ(a.free_bytes(), 1024u * 4096 - outstanding);
  }
}

TEST(ExtentAllocator, PunchReleasesFullyCoveredSectorsOnly) {
  ExtentAllocator a(64 * 4096, 4096);
  auto x = a.Allocate(16 * 4096);
  ASSERT_TRUE(x.ok());
  const uint64_t before = a.free_bytes();
  // [100, 8292) fully covers only sector 1.
  EXPECT_EQ(a.Punch(*x + 100, 2 * 4096), 4096u);
  EXPECT_EQ(a.punched_bytes(), 4096u);
  EXPECT_EQ(a.free_bytes(), before + 4096);
  // Punching the same range again is a no-op.
  EXPECT_EQ(a.Punch(*x + 100, 2 * 4096), 0u);
  EXPECT_EQ(a.punched_bytes(), 4096u);
}

TEST(ExtentAllocator, PunchCoalescesAndRestoreReBacks) {
  ExtentAllocator a(64 * 4096, 4096);
  auto x = a.Allocate(16 * 4096);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(a.Punch(*x, 4 * 4096), 4u * 4096);
  EXPECT_EQ(a.Punch(*x + 8 * 4096, 4 * 4096), 4u * 4096);
  EXPECT_EQ(a.punched_fragments(), 2u);
  // Punching the gap merges the three ranges into one.
  EXPECT_EQ(a.Punch(*x + 4 * 4096, 4 * 4096), 4u * 4096);
  EXPECT_EQ(a.punched_fragments(), 1u);
  EXPECT_EQ(a.punched_bytes(), 12u * 4096);
  // A write touching one byte of a punched sector re-backs that sector.
  EXPECT_EQ(a.Restore(*x + 4096 + 17, 1), 4096u);
  EXPECT_EQ(a.punched_bytes(), 11u * 4096);
  EXPECT_EQ(a.punched_fragments(), 2u);
  // Restoring a never-punched range is a no-op.
  EXPECT_EQ(a.Restore(*x + 13 * 4096, 4096), 0u);
}

TEST(ExtentAllocator, AllocateNeverPlacesInsidePunchedHoles) {
  ExtentAllocator a(8 * 4096, 4096);
  auto x = a.Allocate(6 * 4096);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(a.Punch(*x, 6 * 4096), 6u * 4096);
  // free_bytes says 8 sectors, but only the 2 unallocated ones are
  // general-pool: a 3-sector request must fail rather than squat in the
  // live allocation's punched hole.
  EXPECT_EQ(a.free_bytes(), 8u * 4096);
  EXPECT_EQ(a.Allocate(3 * 4096).status().code(), StatusCode::kOutOfSpace);
  EXPECT_TRUE(a.Allocate(2 * 4096).ok());
  // The owner can still re-back its hole in full.
  EXPECT_EQ(a.Restore(*x, 6 * 4096), 6u * 4096);
}

TEST(ExtentAllocator, FreeAbsorbsPunchedSubranges) {
  ExtentAllocator a(16 * 4096, 4096);
  auto x = a.Allocate(8 * 4096);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(a.Punch(*x + 4096, 3 * 4096), 3u * 4096);
  // Whole-extent free must not double-count the punched capacity.
  a.Free(*x, 8 * 4096);
  EXPECT_EQ(a.punched_bytes(), 0u);
  EXPECT_EQ(a.free_bytes(), 16u * 4096);
  EXPECT_EQ(a.fragments(), 1u);
}

}  // namespace
}  // namespace vde::dev
