#include <gtest/gtest.h>

#include "device/nvme.h"
#include "device/sparse_ram.h"
#include "net/link.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace vde::dev {
namespace {

TEST(SparseRam, HolesReadZero) {
  SparseRam ram(1 << 20);
  Bytes out(100, 0xFF);
  ram.ReadAt(5000, out);
  EXPECT_TRUE(std::all_of(out.begin(), out.end(),
                          [](uint8_t b) { return b == 0; }));
  EXPECT_EQ(ram.allocated_pages(), 0u);
}

TEST(SparseRam, WriteReadRoundtripAcrossPages) {
  SparseRam ram(1 << 20);
  Rng rng(1);
  const Bytes data = rng.RandomBytes(10000);  // spans 3 pages
  ram.WriteAt(4000, data);
  Bytes out(10000);
  ram.ReadAt(4000, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(ram.allocated_pages(), 4u);  // bytes 4000..14000 touch pages 0-3
}

TEST(SparseRam, PartialPageWritePreservesNeighbors) {
  SparseRam ram(1 << 20);
  const Bytes a(4096, 0xAA);
  ram.WriteAt(0, a);
  const Bytes b(10, 0xBB);
  ram.WriteAt(100, b);
  Bytes out(4096);
  ram.ReadAt(0, out);
  EXPECT_EQ(out[99], 0xAA);
  EXPECT_EQ(out[100], 0xBB);
  EXPECT_EQ(out[109], 0xBB);
  EXPECT_EQ(out[110], 0xAA);
}

sim::Task<void> DoIo(NvmeDevice& dev, std::vector<Status>* results) {
  Rng rng(7);
  const Bytes data = rng.RandomBytes(8192);
  results->push_back(co_await dev.Write(4096, data));
  Bytes out(8192);
  results->push_back(co_await dev.Read(4096, out));
  results->push_back(out == data ? Status::Ok() : Status::Corruption());
  // Unaligned IO must be rejected.
  Bytes small(100);
  results->push_back(co_await dev.Read(4096, small));
  results->push_back(co_await dev.Write(10, data));
}

TEST(Nvme, AlignedIoRoundtripAndRejection) {
  sim::Scheduler sched;
  NvmeDevice dev;
  std::vector<Status> results;
  sched.Spawn(DoIo(dev, &results));
  sched.Run();
  ASSERT_EQ(results.size(), 5u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_TRUE(results[2].ok()) << "data mismatch through device";
  EXPECT_EQ(results[3].code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(results[4].code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dev.stats().write_ops, 1u);
  EXPECT_EQ(dev.stats().read_ops, 1u);
  EXPECT_EQ(dev.stats().sectors_written, 2u);
}

sim::Task<void> OneWrite(NvmeDevice& dev, size_t bytes) {
  const Bytes data(bytes, 0xCD);
  (void)co_await dev.Write(0, data);
}

TEST(Nvme, CostModelChargesLatencyPlusTransfer) {
  sim::Scheduler sched;
  NvmeConfig cfg;
  cfg.write_latency = 10 * sim::kUs;
  cfg.write_gbps = 1.0;  // 1 ns per byte
  NvmeDevice dev(cfg);
  sched.Spawn(OneWrite(dev, 4096));
  sched.Run();
  EXPECT_EQ(sched.now(), 10 * sim::kUs + 4096u);
}

sim::Task<void> ParallelReads(NvmeDevice& dev, int n, size_t bytes) {
  std::vector<sim::Task<void>> tasks;
  for (int i = 0; i < n; ++i) {
    tasks.push_back([](NvmeDevice& d, size_t len, uint64_t off) -> sim::Task<void> {
      Bytes out(len);
      (void)co_await d.Read(off, out);
    }(dev, bytes, static_cast<uint64_t>(i) * bytes));
  }
  co_await sim::WhenAll(std::move(tasks));
}

TEST(Nvme, ChannelsBoundConcurrency) {
  sim::Scheduler sched;
  NvmeConfig cfg;
  cfg.read_latency = 100 * sim::kUs;
  cfg.read_gbps = 1000.0;  // transfer time negligible
  cfg.channels = 4;
  NvmeDevice dev(cfg);
  sched.Spawn(ParallelReads(dev, 8, 4096));
  sched.Run();
  // 8 ops over 4 channels at 100us each => 2 waves => 200us (+epsilon).
  EXPECT_GE(sched.now(), 200 * sim::kUs);
  EXPECT_LT(sched.now(), 210 * sim::kUs);
}

sim::Task<void> SendOne(net::Nic& a, net::Nic& b, size_t bytes) {
  co_await net::Send(a, b, bytes);
}

TEST(Nic, SendChargesSerializationAndPropagation) {
  sim::Scheduler sched;
  net::NicConfig cfg;
  cfg.gbytes_per_sec = 1.0;  // 1 ns/byte
  cfg.propagation = 10 * sim::kUs;
  cfg.streams = 1;
  net::Nic a(cfg), b(cfg);
  sched.Spawn(SendOne(a, b, 1000));
  sched.Run();
  // Cut-through: max(egress, ingress) serialization + propagation.
  EXPECT_EQ(sched.now(), 1000u + 10 * sim::kUs);
  EXPECT_EQ(a.egress().bytes_transferred(), 1000u);
  EXPECT_EQ(b.ingress().bytes_transferred(), 1000u);
}

sim::Task<void> ManySends(net::Nic& a, net::Nic& b, int n, size_t bytes) {
  std::vector<sim::Task<void>> tasks;
  for (int i = 0; i < n; ++i) tasks.push_back(SendOne(a, b, bytes));
  co_await sim::WhenAll(std::move(tasks));
}

TEST(Nic, EgressSerializesFlows) {
  sim::Scheduler sched;
  net::NicConfig cfg;
  cfg.gbytes_per_sec = 1.0;
  cfg.propagation = 0;
  cfg.streams = 1;
  net::Nic a(cfg), b(cfg);
  sched.Spawn(ManySends(a, b, 4, 1000));
  sched.Run();
  // 4 messages serialized on the (single-stream) pipes; egress and ingress
  // overlap per message, so the last finishes at 4000ns.
  EXPECT_EQ(sched.now(), 4000u);
}

}  // namespace
}  // namespace vde::dev
