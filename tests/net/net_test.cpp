// net::Pipe / net::Nic: byte accounting (charged once, at admission),
// zero-byte sends, saturation clamps, and lane sharing.
#include <gtest/gtest.h>

#include <limits>

#include "../testutil.h"
#include "net/link.h"
#include "sim/scheduler.h"

namespace vde::net {
namespace {

NicConfig SlowNic() {
  // 1 byte/ns aggregate over 2 lanes -> 2 ns/byte per lane.
  return NicConfig{/*gbytes_per_sec=*/1.0, /*propagation=*/100, /*streams=*/2};
}

TEST(Net, ZeroByteSendIsFree) {
  testutil::RunSim([]() -> sim::Task<void> {
    Nic a(SlowNic()), b(SlowNic());
    const sim::SimTime t0 = sim::Scheduler::Current().now();
    co_await Send(a, b, 0);
    // No serialization, no propagation, no bytes on either gauge.
    EXPECT_EQ(sim::Scheduler::Current().now(), t0);
    EXPECT_EQ(a.egress().bytes_transferred(), 0u);
    EXPECT_EQ(b.ingress().bytes_transferred(), 0u);
  });
}

TEST(Net, SendChargesBothGaugesOnceAndTakesPropagation) {
  testutil::RunSim([]() -> sim::Task<void> {
    Nic a(SlowNic()), b(SlowNic());
    const sim::SimTime t0 = sim::Scheduler::Current().now();
    co_await Send(a, b, 1000);
    // 1000 bytes * 2 ns/byte (overlapped halves) + 100 ns propagation.
    EXPECT_EQ(sim::Scheduler::Current().now() - t0, 2100u);
    EXPECT_EQ(a.egress().bytes_transferred(), 1000u);
    EXPECT_EQ(a.ingress().bytes_transferred(), 0u);
    EXPECT_EQ(b.ingress().bytes_transferred(), 1000u);
    EXPECT_EQ(b.egress().bytes_transferred(), 0u);
  });
}

TEST(Net, BytesChargedAtAdmissionNotCompletion) {
  testutil::RunSim([]() -> sim::Task<void> {
    // 2 lanes busy + a third transfer queued: the queued transfer's bytes
    // must already be on the gauge while it waits for a lane.
    Nic a(SlowNic());
    std::vector<sim::Task<void>> flows;
    flows.push_back(a.egress().Transfer(10000));
    flows.push_back(a.egress().Transfer(10000));
    flows.push_back([](Nic* nic) -> sim::Task<void> {
      co_await nic->egress().Transfer(500);
    }(&a));
    auto all = sim::WhenAll(std::move(flows));
    // Start the flows but look at the gauge before any of them finish.
    auto probe = [](Nic* nic) -> sim::Task<void> {
      co_await sim::Sleep{1};
      EXPECT_EQ(nic->egress().bytes_transferred(), 20500u);
    }(&a);
    co_await sim::WhenAll([&] {
      std::vector<sim::Task<void>> v;
      v.push_back(std::move(all));
      v.push_back(std::move(probe));
      return v;
    }());
  });
}

TEST(Net, ByteGaugeSaturatesInsteadOfWrapping) {
  testutil::RunSim([]() -> sim::Task<void> {
    // Two enormous admissions: the second add would wrap uint64_t; the
    // gauge must pin at max instead. The serialization sleep is clamped
    // too, so the sim clock stays finite.
    Pipe p(/*aggregate_gbps=*/1e15, /*lanes=*/2);
    const size_t huge = std::numeric_limits<size_t>::max() - 3;
    std::vector<sim::Task<void>> flows;
    flows.push_back(p.Transfer(huge));
    flows.push_back(p.Transfer(huge));
    co_await sim::WhenAll(std::move(flows));
    EXPECT_EQ(p.bytes_transferred(), std::numeric_limits<uint64_t>::max());
  });
}

TEST(Net, SerializationClampKeepsSimTimeFinite) {
  Pipe p(/*aggregate_gbps=*/1e-6, /*lanes=*/4);  // 4e6 ns per byte
  const sim::SimTime t = p.SerializationNs(std::numeric_limits<size_t>::max());
  EXPECT_EQ(t, static_cast<sim::SimTime>(9.0e18));
  // Sane inputs still round normally.
  EXPECT_EQ(p.SerializationNs(2), static_cast<sim::SimTime>(8000000));
}

TEST(Net, LanesShareBandwidthFifo) {
  testutil::RunSim([]() -> sim::Task<void> {
    // 2 lanes, 3 equal transfers: the third waits for the first free lane,
    // so the batch takes two serialization slots end to end.
    Nic a(SlowNic());
    const sim::SimTime t0 = sim::Scheduler::Current().now();
    std::vector<sim::Task<void>> flows;
    for (int i = 0; i < 3; ++i) flows.push_back(a.egress().Transfer(1000));
    co_await sim::WhenAll(std::move(flows));
    EXPECT_EQ(sim::Scheduler::Current().now() - t0, 4000u);
  });
}

}  // namespace
}  // namespace vde::net
