#include "kv/memtable.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace vde::kv {
namespace {

TEST(MemTable, PutGet) {
  MemTable m;
  m.Put(BytesOf("alpha"), BytesOf("1"));
  m.Put(BytesOf("beta"), BytesOf("2"));
  ASSERT_NE(m.Get(BytesOf("alpha")), nullptr);
  EXPECT_EQ(m.Get(BytesOf("alpha"))->value, BytesOf("1"));
  EXPECT_EQ(m.Get(BytesOf("gamma")), nullptr);
  EXPECT_EQ(m.entries(), 2u);
}

TEST(MemTable, OverwriteReplacesInPlace) {
  MemTable m;
  m.Put(BytesOf("k"), BytesOf("v1"));
  m.Put(BytesOf("k"), BytesOf("v2longer"));
  EXPECT_EQ(m.entries(), 1u);
  EXPECT_EQ(m.Get(BytesOf("k"))->value, BytesOf("v2longer"));
  EXPECT_EQ(m.bytes(), 1 + 8u);  // key + new value
}

TEST(MemTable, DeleteInsertsTombstone) {
  MemTable m;
  m.Put(BytesOf("k"), BytesOf("v"));
  m.Delete(BytesOf("k"));
  ASSERT_NE(m.Get(BytesOf("k")), nullptr);
  EXPECT_TRUE(m.Get(BytesOf("k"))->tombstone);
}

TEST(MemTable, DeleteOfAbsentKeyStillRecorded) {
  // Tombstones must mask older SSTable data, even for never-seen keys.
  MemTable m;
  m.Delete(BytesOf("ghost"));
  ASSERT_NE(m.Get(BytesOf("ghost")), nullptr);
  EXPECT_TRUE(m.Get(BytesOf("ghost"))->tombstone);
}

TEST(MemTable, ScanIsSortedAndBounded) {
  MemTable m;
  for (const char* k : {"d", "a", "c", "b", "e"}) {
    m.Put(BytesOf(k), BytesOf(k));
  }
  const auto all = m.ScanAll();
  ASSERT_EQ(all.size(), 5u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_TRUE(Bytes(all[i - 1].key.begin(), all[i - 1].key.end()) <
                Bytes(all[i].key.begin(), all[i].key.end()));
  }
  const auto some = m.Scan(BytesOf("b"), BytesOf("d"));
  ASSERT_EQ(some.size(), 2u);
  EXPECT_EQ(Bytes(some[0].key.begin(), some[0].key.end()), BytesOf("b"));
  EXPECT_EQ(Bytes(some[1].key.begin(), some[1].key.end()), BytesOf("c"));
}

TEST(MemTable, ScanOpenEnd) {
  MemTable m;
  m.Put(BytesOf("a"), BytesOf("1"));
  m.Put(BytesOf("z"), BytesOf("2"));
  const auto out = m.Scan(BytesOf("b"), {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(Bytes(out[0].key.begin(), out[0].key.end()), BytesOf("z"));
}

TEST(MemTable, ManyRandomKeysSortedProperty) {
  MemTable m;
  Rng rng(42);
  std::map<Bytes, Bytes> model;
  for (int i = 0; i < 2000; ++i) {
    Bytes key = rng.RandomBytes(1 + rng.NextBelow(24));
    Bytes value = rng.RandomBytes(rng.NextBelow(64));
    model[key] = value;
    m.Put(key, value);
  }
  EXPECT_EQ(m.entries(), model.size());
  // Full scan equals the reference model ordering.
  const auto all = m.ScanAll();
  ASSERT_EQ(all.size(), model.size());
  auto it = model.begin();
  for (size_t i = 0; i < all.size(); ++i, ++it) {
    ASSERT_EQ(Bytes(all[i].key.begin(), all[i].key.end()), it->first);
    ASSERT_EQ(all[i].value->value, it->second);
  }
  // Random point queries agree.
  for (const auto& [k, v] : model) {
    const MemValue* got = m.Get(k);
    ASSERT_NE(got, nullptr);
    ASSERT_EQ(got->value, v);
  }
}

TEST(MemTable, BinaryKeysWithEmbeddedZeros) {
  MemTable m;
  const Bytes k1 = {0x00, 0x00, 0x01};
  const Bytes k2 = {0x00, 0x01};
  const Bytes k3 = {0x00};
  m.Put(k1, BytesOf("a"));
  m.Put(k2, BytesOf("b"));
  m.Put(k3, BytesOf("c"));
  const auto all = m.ScanAll();
  ASSERT_EQ(all.size(), 3u);
  // Lexicographic: {00} < {00,00,01} < {00,01}
  EXPECT_EQ(Bytes(all[0].key.begin(), all[0].key.end()), k3);
  EXPECT_EQ(Bytes(all[1].key.begin(), all[1].key.end()), k1);
  EXPECT_EQ(Bytes(all[2].key.begin(), all[2].key.end()), k2);
}

}  // namespace
}  // namespace vde::kv
