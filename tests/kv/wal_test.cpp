// WAL-specific tests: framing, torn writes, generation fencing, and the
// tail-sector rewrite cost structure.
#include "kv/wal.h"

#include <gtest/gtest.h>

#include "../testutil.h"
#include "device/nvme.h"
#include "device/region.h"
#include "util/rng.h"

namespace vde::kv {
namespace {

TEST(Wal, AppendRecoverRoundtrip) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    dev::RegionDevice region(nvme, 0, 1 << 20);
    Wal wal(region, 1);
    Rng rng(1);
    std::vector<Bytes> frames;
    for (int i = 0; i < 20; ++i) {
      frames.push_back(rng.RandomBytes(1 + rng.NextBelow(3000)));
      CO_ASSERT_OK(co_await wal.Append(frames.back()));
    }
    Wal reopened(region, 1);
    auto recovered = co_await reopened.Recover();
    CO_ASSERT_OK(recovered.status());
    CO_ASSERT_EQ(recovered->size(), frames.size());
    for (size_t i = 0; i < frames.size(); ++i) {
      CO_ASSERT_TRUE((*recovered)[i] == frames[i]);
    }
  });
}

TEST(Wal, RecoveryStopsAtTornFrame) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    dev::RegionDevice region(nvme, 0, 1 << 20);
    Wal wal(region, 1);
    CO_ASSERT_OK(co_await wal.Append(BytesOf("frame-one")));
    CO_ASSERT_OK(co_await wal.Append(BytesOf("frame-two")));
    CO_ASSERT_OK(co_await wal.Append(BytesOf("frame-three")));
    // Tear the third frame: flip a byte in its payload region on disk.
    Bytes sector(4096);
    CO_ASSERT_OK(co_await region.Read(0, sector));
    // frame layout: 16B header + payload; frame 3 starts after two frames.
    const size_t frame_size = 16 + 9;  // "frame-one" etc are 9 bytes
    sector[2 * frame_size + 18] ^= 0xFF;
    CO_ASSERT_OK(co_await region.Write(0, sector));

    Wal reopened(region, 1);
    auto recovered = co_await reopened.Recover();
    CO_ASSERT_OK(recovered.status());
    CO_ASSERT_EQ(recovered->size(), 2u);
    CO_ASSERT_TRUE((*recovered)[0] == BytesOf("frame-one"));
    CO_ASSERT_TRUE((*recovered)[1] == BytesOf("frame-two"));
  });
}

TEST(Wal, GenerationFencesStaleFrames) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    dev::RegionDevice region(nvme, 0, 1 << 20);
    Wal wal(region, 1);
    CO_ASSERT_OK(co_await wal.Append(BytesOf("old-generation-data")));
    CO_ASSERT_OK(co_await wal.Append(BytesOf("more-old-data")));
    // Reset to generation 2 and write ONE new frame. The old gen-1 frames
    // physically remain beyond it but must not be replayed.
    wal.Reset(2);
    CO_ASSERT_OK(co_await wal.Append(BytesOf("new")));
    Wal reopened(region, 2);
    auto recovered = co_await reopened.Recover();
    CO_ASSERT_OK(recovered.status());
    CO_ASSERT_EQ(recovered->size(), 1u);
    CO_ASSERT_TRUE((*recovered)[0] == BytesOf("new"));
  });
}

TEST(Wal, AppendAfterRecoveryContinues) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    dev::RegionDevice region(nvme, 0, 1 << 20);
    {
      Wal wal(region, 1);
      CO_ASSERT_OK(co_await wal.Append(BytesOf("before-crash")));
    }
    Wal wal(region, 1);
    auto recovered = co_await wal.Recover();
    CO_ASSERT_OK(recovered.status());
    CO_ASSERT_EQ(recovered->size(), 1u);
    CO_ASSERT_OK(co_await wal.Append(BytesOf("after-recovery")));
    // A third instance sees both, in order.
    Wal again(region, 1);
    auto both = co_await again.Recover();
    CO_ASSERT_OK(both.status());
    CO_ASSERT_EQ(both->size(), 2u);
    CO_ASSERT_TRUE((*both)[1] == BytesOf("after-recovery"));
  });
}

TEST(Wal, FullLogReportsOutOfSpace) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    dev::RegionDevice region(nvme, 0, 16 * 4096);
    Wal wal(region, 1);
    Rng rng(2);
    Status s = Status::Ok();
    int appended = 0;
    while (s.ok() && appended < 1000) {
      s = co_await wal.Append(rng.RandomBytes(4000));
      if (s.ok()) appended++;
    }
    CO_ASSERT_EQ(s.code(), StatusCode::kOutOfSpace);
    CO_ASSERT_TRUE(appended >= 15);  // ~16 x 4KB frames in a 64KB region
    // Reset makes it usable again.
    wal.Reset(2);
    CO_ASSERT_OK(co_await wal.Append(BytesOf("fresh")));
  });
}

TEST(Wal, SmallAppendsRewriteTailSector) {
  // Cost structure: every commit is one contiguous device write; small
  // frames rewrite the same tail sector (like an fdatasync'd log).
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    dev::RegionDevice region(nvme, 0, 1 << 20);
    Wal wal(region, 1);
    const auto before = nvme.stats().write_ops;
    for (int i = 0; i < 10; ++i) {
      CO_ASSERT_OK(co_await wal.Append(BytesOf("tiny")));
    }
    const auto stats = nvme.stats();
    CO_ASSERT_EQ(stats.write_ops - before, 10u);
    // 10 tiny frames fit one sector: exactly one sector per commit.
    CO_ASSERT_EQ(stats.sectors_written, 10u);
  });
}

TEST(Wal, LargeFrameSpansSectorsInOneWrite) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    dev::RegionDevice region(nvme, 0, 1 << 20);
    Wal wal(region, 1);
    Rng rng(3);
    CO_ASSERT_OK(co_await wal.Append(rng.RandomBytes(10000)));
    CO_ASSERT_EQ(nvme.stats().write_ops, 1u);
    CO_ASSERT_EQ(nvme.stats().sectors_written, 3u);  // ceil(10016/4096)
  });
}

}  // namespace
}  // namespace vde::kv
