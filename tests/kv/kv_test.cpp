// Integration tests for the LSM store: WAL durability, flush, compaction,
// range scans, crash recovery, and model-based property checks.
#include <gtest/gtest.h>

#include <map>

#include "../testutil.h"

#include "device/nvme.h"
#include "device/region.h"
#include "kv/db.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace vde::kv {
namespace {

KvOptions SmallOptions() {
  KvOptions o;
  o.wal_size = 256 * 1024;
  o.memtable_limit = 64 * 1024;
  o.l0_compaction_trigger = 3;
  o.block_size = 4096;
  return o;
}

TEST(KvStore, PutGetRoundtrip) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    auto store = co_await KvStore::Open(nvme, SmallOptions());
    CO_ASSERT_OK(store.status());
    auto& kv = **store;
    EXPECT_TRUE((co_await kv.Put(BytesOf("key1"), BytesOf("value1"))).ok());
    auto got = co_await kv.Get(BytesOf("key1"));
    CO_ASSERT_TRUE(got.ok());
    CO_ASSERT_TRUE(got->has_value());
    EXPECT_EQ(**got, BytesOf("value1"));
    auto missing = co_await kv.Get(BytesOf("nope"));
    CO_ASSERT_TRUE(missing.ok());
    EXPECT_FALSE(missing->has_value());
  });
}

TEST(KvStore, DeleteHidesKey) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    auto store = co_await KvStore::Open(nvme, SmallOptions());
    auto& kv = **store;
    (void)co_await kv.Put(BytesOf("k"), BytesOf("v"));
    (void)co_await kv.Delete(BytesOf("k"));
    auto got = co_await kv.Get(BytesOf("k"));
    CO_ASSERT_TRUE(got.ok());
    EXPECT_FALSE(got->has_value());
  });
}

TEST(KvStore, BatchIsAtomicInMemory) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    auto store = co_await KvStore::Open(nvme, SmallOptions());
    auto& kv = **store;
    WriteBatch b;
    for (int i = 0; i < 100; ++i) {
      b.Put(BytesOf("key" + std::to_string(i)), BytesOf(std::to_string(i)));
    }
    EXPECT_TRUE((co_await kv.Write(std::move(b))).ok());
    for (int i = 0; i < 100; ++i) {
      auto got = co_await kv.Get(BytesOf("key" + std::to_string(i)));
      CO_ASSERT_TRUE(got.ok() && got->has_value());
    }
  });
}

TEST(KvStore, FlushMovesDataToTables) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    auto store = co_await KvStore::Open(nvme, SmallOptions());
    auto& kv = **store;
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
      (void)co_await kv.Put(BytesOf("key" + std::to_string(i)),
                            rng.RandomBytes(100));
    }
    EXPECT_TRUE((co_await kv.Flush()).ok());
    EXPECT_EQ(kv.memtable_bytes(), 0u);
    EXPECT_GE(kv.l0_tables() + (kv.has_l1() ? 1 : 0), 1u);
    auto got = co_await kv.Get(BytesOf("key17"));
    CO_ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->has_value());
  });
}

TEST(KvStore, AutomaticFlushAndCompaction) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    auto store = co_await KvStore::Open(nvme, SmallOptions());
    auto& kv = **store;
    Rng rng(2);
    // Write well past several memtable limits to force flushes/compactions.
    for (int i = 0; i < 600; ++i) {
      (void)co_await kv.Put(BytesOf("key" + std::to_string(i % 200)),
                            rng.RandomBytes(600));
    }
    EXPECT_GE(kv.stats().flushes, 3u);
    EXPECT_GE(kv.stats().compactions, 1u);
    // All 200 live keys still readable.
    for (int i = 0; i < 200; ++i) {
      auto got = co_await kv.Get(BytesOf("key" + std::to_string(i)));
      CO_ASSERT_TRUE(got.ok() && got->has_value());
    }
  });
}

TEST(KvStore, TombstonesSurviveFlushAndMaskTables) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    auto store = co_await KvStore::Open(nvme, SmallOptions());
    auto& kv = **store;
    (void)co_await kv.Put(BytesOf("doomed"), BytesOf("v"));
    (void)co_await kv.Flush();  // value now in an SSTable
    (void)co_await kv.Delete(BytesOf("doomed"));
    (void)co_await kv.Flush();  // tombstone in a newer SSTable
    auto got = co_await kv.Get(BytesOf("doomed"));
    CO_ASSERT_TRUE(got.ok());
    EXPECT_FALSE(got->has_value());
  });
}

TEST(KvStore, ScanMergesAllLevels) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    auto store = co_await KvStore::Open(nvme, SmallOptions());
    auto& kv = **store;
    (void)co_await kv.Put(BytesOf("a"), BytesOf("old"));
    (void)co_await kv.Put(BytesOf("b"), BytesOf("1"));
    (void)co_await kv.Flush();
    (void)co_await kv.Put(BytesOf("a"), BytesOf("new"));  // shadows table
    (void)co_await kv.Put(BytesOf("c"), BytesOf("2"));
    auto out = co_await kv.Scan(BytesOf("a"), BytesOf("zz"));
    CO_ASSERT_TRUE(out.ok());
    CO_ASSERT_EQ(out->size(), 3u);
    EXPECT_EQ((*out)[0].second, BytesOf("new"));
    EXPECT_EQ((*out)[1].second, BytesOf("1"));
    EXPECT_EQ((*out)[2].second, BytesOf("2"));
  });
}

TEST(KvStore, ScanHonorsLimitAndBounds) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    auto store = co_await KvStore::Open(nvme, SmallOptions());
    auto& kv = **store;
    for (int i = 0; i < 20; ++i) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "k%02d", i);
      (void)co_await kv.Put(BytesOf(buf), BytesOf(std::to_string(i)));
    }
    auto out = co_await kv.Scan(BytesOf("k05"), BytesOf("k15"), 4);
    CO_ASSERT_TRUE(out.ok());
    CO_ASSERT_EQ(out->size(), 4u);
    EXPECT_EQ((*out)[0].first, BytesOf("k05"));
    EXPECT_EQ((*out)[3].first, BytesOf("k08"));
  });
}

TEST(KvStore, RecoversFromWalAfterCrash) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    {
      auto store = co_await KvStore::Open(nvme, SmallOptions());
      auto& kv = **store;
      (void)co_await kv.Put(BytesOf("persisted"), BytesOf("yes"));
      (void)co_await kv.Put(BytesOf("also"), BytesOf("this"));
      // "Crash": drop the store without flushing. WAL has the data.
    }
    auto store = co_await KvStore::Open(nvme, SmallOptions());
    CO_ASSERT_OK(store.status());
    auto& kv = **store;
    auto got = co_await kv.Get(BytesOf("persisted"));
    CO_ASSERT_TRUE(got.ok());
    CO_ASSERT_TRUE(got->has_value());
    EXPECT_EQ(**got, BytesOf("yes"));
  });
}

TEST(KvStore, RecoversTablesAndWalAcrossGenerations) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    {
      auto store = co_await KvStore::Open(nvme, SmallOptions());
      auto& kv = **store;
      (void)co_await kv.Put(BytesOf("in_table"), BytesOf("t"));
      (void)co_await kv.Flush();
      (void)co_await kv.Put(BytesOf("in_wal"), BytesOf("w"));
    }
    auto store = co_await KvStore::Open(nvme, SmallOptions());
    CO_ASSERT_TRUE(store.ok());
    auto& kv = **store;
    auto t = co_await kv.Get(BytesOf("in_table"));
    auto w = co_await kv.Get(BytesOf("in_wal"));
    CO_ASSERT_TRUE(t.ok() && t->has_value());
    CO_ASSERT_TRUE(w.ok() && w->has_value());
    // Stale WAL frames from before the flush must NOT resurrect: write
    // something, delete it, flush (wal reset), reopen.
    (void)co_await kv.Put(BytesOf("zombie"), BytesOf("alive"));
    (void)co_await kv.Delete(BytesOf("zombie"));
    (void)co_await kv.Flush();
    auto z = co_await kv.Get(BytesOf("zombie"));
    CO_ASSERT_TRUE(z.ok());
    EXPECT_FALSE(z->has_value());
  });
}

TEST(KvStore, ModelCheckRandomOps) {
  // Property test: the store must agree with a std::map model under a long
  // random mixed workload crossing many flush/compaction boundaries.
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    auto store = co_await KvStore::Open(nvme, SmallOptions());
    auto& kv = **store;
    std::map<Bytes, Bytes> model;
    Rng rng(1234);
    for (int step = 0; step < 1500; ++step) {
      const uint64_t choice = rng.NextBelow(10);
      Bytes key = BytesOf("key" + std::to_string(rng.NextBelow(300)));
      if (choice < 6) {
        Bytes value = rng.RandomBytes(1 + rng.NextBelow(300));
        model[key] = value;
        CO_ASSERT_TRUE((co_await kv.Put(key, value)).ok());
      } else if (choice < 8) {
        model.erase(key);
        CO_ASSERT_TRUE((co_await kv.Delete(key)).ok());
      } else {
        auto got = co_await kv.Get(key);
        CO_ASSERT_TRUE(got.ok());
        const auto it = model.find(key);
        if (it == model.end()) {
          CO_ASSERT_FALSE(got->has_value());
        } else {
          CO_ASSERT_TRUE(got->has_value());
          CO_ASSERT_EQ(**got, it->second);
        }
      }
    }
    // Final full-range scan equals the model.
    auto out = co_await kv.Scan({}, {});
    CO_ASSERT_TRUE(out.ok());
    CO_ASSERT_EQ(out->size(), model.size());
    auto it = model.begin();
    for (size_t i = 0; i < out->size(); ++i, ++it) {
      CO_ASSERT_EQ((*out)[i].first, it->first);
      CO_ASSERT_EQ((*out)[i].second, it->second);
    }
  });
}

TEST(KvStore, ModelCheckSurvivesReopen) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    std::map<Bytes, Bytes> model;
    Rng rng(777);
    for (int round = 0; round < 3; ++round) {
      auto store = co_await KvStore::Open(nvme, SmallOptions());
      CO_ASSERT_TRUE(store.ok());
      auto& kv = **store;
      for (int step = 0; step < 300; ++step) {
        Bytes key = BytesOf("k" + std::to_string(rng.NextBelow(100)));
        if (rng.NextBelow(4) == 0) {
          model.erase(key);
          CO_ASSERT_TRUE((co_await kv.Delete(key)).ok());
        } else {
          Bytes value = rng.RandomBytes(1 + rng.NextBelow(100));
          model[key] = value;
          CO_ASSERT_TRUE((co_await kv.Put(key, value)).ok());
        }
      }
      auto out = co_await kv.Scan({}, {});
      CO_ASSERT_TRUE(out.ok());
      CO_ASSERT_EQ(out->size(), model.size());
    }
  });
}

TEST(KvStore, WalCommitsChargeDeviceWrites) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    auto store = co_await KvStore::Open(nvme, SmallOptions());
    auto& kv = **store;
    const auto before = nvme.stats().write_ops;
    (void)co_await kv.Put(BytesOf("k"), BytesOf("v"));
    EXPECT_GT(nvme.stats().write_ops, before)
        << "a committed put must hit the device (WAL)";
  });
}

TEST(KvStore, BloomFiltersSkipTables) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    auto store = co_await KvStore::Open(nvme, SmallOptions());
    auto& kv = **store;
    for (int i = 0; i < 100; ++i) {
      (void)co_await kv.Put(BytesOf("present" + std::to_string(i)),
                            BytesOf("v"));
    }
    (void)co_await kv.Flush();
    // Absent keys chosen INSIDE the table's [min,max] key range, so only the
    // bloom filter (not the range check) can skip the table.
    for (int i = 0; i < 200; ++i) {
      (void)co_await kv.Get(BytesOf("present" + std::to_string(i % 90) + "q"));
    }
    EXPECT_GT(kv.stats().bloom_skips, 150u)
        << "most absent-key lookups should be answered by the bloom filter";
  });
}

// ScanPrefix must return exactly the keys sharing the prefix — keys that
// compare between the prefix and its successor but do NOT extend it
// (shorter keys, diverging bytes) stay out, and the derived upper bound
// handles the tricky byte values (0xFF tails, empty prefix).
TEST(KvStore, ScanPrefixBoundaries) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    auto store = co_await KvStore::Open(nvme, SmallOptions());
    auto& kv = **store;
    // Neighbors around the "ab" prefix in byte order: "aa…" below,
    // "ab" itself + extensions inside, "ac" first key above.
    const std::vector<std::string> keys = {"aa", "aaz", "ab",   "ab\x01",
                                           "abc", "abz", "ac", "b"};
    for (const auto& k : keys) {
      (void)co_await kv.Put(BytesOf(k), BytesOf("v:" + k));
    }
    // Half in tables, half in the memtable: the scan must merge both.
    (void)co_await kv.Flush();
    (void)co_await kv.Put(BytesOf("abm"), BytesOf("v:abm"));

    auto hits = co_await kv.ScanPrefix(BytesOf("ab"));
    CO_ASSERT_OK(hits.status());
    std::vector<std::string> got;
    for (const auto& [k, v] : *hits) {
      got.emplace_back(k.begin(), k.end());
    }
    const std::vector<std::string> want = {"ab", "ab\x01", "abc", "abm",
                                           "abz"};
    EXPECT_EQ(got, want);

    // `limit` truncates the ordered result, it never widens it.
    auto limited = co_await kv.ScanPrefix(BytesOf("ab"), 2);
    CO_ASSERT_OK(limited.status());
    CO_ASSERT_EQ(limited->size(), 2u);
    EXPECT_EQ((*limited)[0].first, BytesOf("ab"));
    EXPECT_EQ((*limited)[1].first, BytesOf("ab\x01"));
  });
}

TEST(KvStore, ScanPrefixHighBytesAndEmptyPrefix) {
  testutil::RunSim([]() -> sim::Task<void> {
    dev::NvmeDevice nvme;
    auto store = co_await KvStore::Open(nvme, SmallOptions());
    auto& kv = **store;
    // A prefix ending in 0xFF has no same-length successor: the upper
    // bound must come from incrementing an earlier byte.
    Bytes hi = {0x61, 0xFF};          // "a\xFF"
    Bytes inside1 = {0x61, 0xFF};     // the prefix itself
    Bytes inside2 = {0x61, 0xFF, 0x00};
    Bytes inside3 = {0x61, 0xFF, 0xFF};
    Bytes outside = {0x62};           // "b" — next after bumping 0x61
    (void)co_await kv.Put(inside1, BytesOf("1"));
    (void)co_await kv.Put(inside2, BytesOf("2"));
    (void)co_await kv.Put(inside3, BytesOf("3"));
    (void)co_await kv.Put(outside, BytesOf("x"));

    auto hits = co_await kv.ScanPrefix(hi);
    CO_ASSERT_OK(hits.status());
    CO_ASSERT_EQ(hits->size(), 3u);
    EXPECT_EQ((*hits)[0].first, inside1);
    EXPECT_EQ((*hits)[2].first, inside3);

    // All-0xFF prefix: everything >= it (nothing here but the probe key).
    Bytes all_ff = {0xFF, 0xFF};
    (void)co_await kv.Put(all_ff, BytesOf("top"));
    auto top = co_await kv.ScanPrefix(all_ff);
    CO_ASSERT_OK(top.status());
    CO_ASSERT_EQ(top->size(), 1u);
    EXPECT_EQ((*top)[0].first, all_ff);

    // Empty prefix scans the whole keyspace, deletions excluded.
    (void)co_await kv.Delete(inside2);
    auto all = co_await kv.ScanPrefix(Bytes{});
    CO_ASSERT_OK(all.status());
    EXPECT_EQ(all->size(), 4u);
  });
}

}  // namespace
}  // namespace vde::kv
